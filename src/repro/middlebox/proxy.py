"""A transparent HTTP proxy middlebox (AT&T Stream Saver).

AT&T's Stream Saver terminates port-80 TCP connections: it is an endpoint,
not a passive observer.  That defeats every unilateral evasion technique in
the paper's taxonomy (Table 3's all-× AT&T column) because the proxy
validates packets like a host, reassembles the stream, and forwards a
*normalized* copy.  The only way around it the paper found is to leave its
scope entirely — use a port other than 80 (§6.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.middlebox.flowtable import FlowTable
from repro.netsim.element import NetworkElement, TransitContext
from repro.netsim.shaper import PolicyState
from repro.obs import metrics as obs_metrics
from repro.packets.flow import Direction, FiveTuple
from repro.packets.fragment import reassemble_fragments
from repro.packets.ip import IPPacket
from repro.packets.tcp import TCPFlags, TCPSegment

_FIN_ACK = TCPFlags.FIN | TCPFlags.ACK
_ACK_PSH = TCPFlags.ACK | TCPFlags.PSH

PROXY_MSS = 1460
ANCHORS = (b"GET", b"POST", b"HEAD", b"PUT")


@dataclass
class _ProxiedConnection:
    client: str
    client_port: int
    server: str
    server_port: int
    expected_seq: int
    emit_seq: int
    ooo: dict[int, bytes] = field(default_factory=dict)
    client_buffer: bytearray = field(default_factory=bytearray)
    server_buffer: bytearray = field(default_factory=bytearray)
    client_matched: bool = False
    server_matched: bool = False
    throttled: bool = False
    closed: bool = False
    # Scan watermarks: keywords already found, and how far each buffer has
    # been searched, so classification never rescans bytes it has seen
    # (matches stay monotonic — buffers only grow).
    client_found: set[bytes] = field(default_factory=set)
    server_found: set[bytes] = field(default_factory=set)
    client_scan_pos: int = 0
    server_scan_pos: int = 0
    # Tail-scan degrade mode: bytes trimmed from each buffer's head under a
    # scan-buffer cap, and the anchor decision cached before the head went.
    trimmed_client: int = 0
    trimmed_server: int = 0
    anchored: bool = False


class TransparentHTTPProxy(NetworkElement):
    """Terminates and re-originates port-80 TCP flows, classifying in between.

    Args:
        policy_state: shared marks (throttle) read by the path shaper.
        ports: TCP server ports the proxy intercepts (Stream Saver: {80}).
        client_keywords: patterns that must all appear in the client stream.
        server_keywords: patterns that must all appear in the server stream.
        throttle_rate_bps: shaping rate applied once both sides match.
        max_connections: bound on tracked proxied connections; beyond it
            the least-recently-active connection is evicted (closed ones
            preferred).
        scan_buffer_cap: per-direction scan-buffer byte cap.  On overflow
            the head is trimmed and only the tail window stays scannable —
            keywords wholly inside the trimmed region are missed (degraded,
            counted in ``mbx.shed.scan_trimmed_bytes``) but memory per
            connection stays bounded.  None (the default) never trims.
        fragment_capacity: bound on concurrently-reassembling fragment
            groups.
    """

    def __init__(
        self,
        policy_state: PolicyState,
        ports: frozenset[int] = frozenset({80}),
        client_keywords: tuple[bytes, ...] = (b"GET", b"HTTP/1.1"),
        server_keywords: tuple[bytes, ...] = (b"Content-Type: video",),
        throttle_rate_bps: float = 1_500_000.0,
        name: str = "transparent-proxy",
        max_connections: int | None = 65536,
        scan_buffer_cap: int | None = None,
        fragment_capacity: int | None = 4096,
    ) -> None:
        if scan_buffer_cap is not None and scan_buffer_cap < 64:
            raise ValueError("scan_buffer_cap must be >= 64 bytes")
        self.name = name
        self.policy_state = policy_state
        self.ports = frozenset(ports)
        self.client_keywords = tuple(client_keywords)
        self.server_keywords = tuple(server_keywords)
        self.throttle_rate_bps = throttle_rate_bps
        self.scan_buffer_cap = scan_buffer_cap
        self._connections: FlowTable[tuple[str, int, str, int], _ProxiedConnection] = FlowTable(
            capacity=max_connections,
            prefer_victim=lambda conn: conn.closed,
            name="proxy",
        )
        self._fragments: FlowTable[tuple[str, str, int, int], list[IPPacket]] = FlowTable(
            capacity=fragment_capacity, name="proxy_fragments"
        )
        self.dropped: list[IPPacket] = []

    # ------------------------------------------------------------------
    # element interface
    # ------------------------------------------------------------------
    def process(
        self, packet: IPPacket, direction: Direction, ctx: TransitContext
    ) -> list[IPPacket]:
        """Terminate in-scope flows; forward everything else untouched."""
        if packet.mf or packet.frag_offset > 0:
            whole = self._feed_fragment(packet)
            if whole is None:
                return []  # the proxy host buffers fragments; nothing forwards yet
            packet = whole
        tcp = packet.transport
        declared = packet.protocol
        if type(tcp) is not TCPSegment or not (declared is None or declared == 6):
            return [packet]  # non-TCP (including wrong-protocol packets) is tunneled
        in_scope = (
            tcp.dport in self.ports
            if direction is Direction.CLIENT_TO_SERVER
            else tcp.sport in self.ports
        )
        if not in_scope:
            return [packet]
        if direction is Direction.CLIENT_TO_SERVER:
            return self._client_to_server(packet, tcp)
        return self._server_to_client(packet, tcp)

    def reset(self) -> None:
        """Forget all proxied connections."""
        self._connections.clear()
        self._fragments.clear()
        self.dropped.clear()

    # ------------------------------------------------------------------
    # client → server leg (the terminated side)
    # ------------------------------------------------------------------
    def _client_to_server(self, packet: IPPacket, tcp: TCPSegment) -> list[IPPacket]:
        if not self._host_grade_valid(packet, tcp):
            self.dropped.append(packet)
            return []
        key = (packet.src, tcp.sport, packet.dst, tcp.dport)
        conn = self._connections.get(key)  # touches the LRU chain

        flags = int(tcp.flags)
        if flags & 0x12 == 0x02:  # SYN without ACK
            self._connections.insert(key, _ProxiedConnection(
                client=packet.src,
                client_port=tcp.sport,
                server=packet.dst,
                server_port=tcp.dport,
                expected_seq=(tcp.seq + 1) & 0xFFFFFFFF,
                emit_seq=(tcp.seq + 1) & 0xFFFFFFFF,
            ))
            return [packet]  # the handshake is relayed

        if conn is None:
            return []  # mid-flow traffic for a connection we never saw
        if flags & 0x04:  # RST
            conn.closed = True
            return [packet]
        if conn.closed:
            return []

        forwarded: list[IPPacket] = []
        if tcp.payload:
            fresh = self._reassemble(conn, tcp)
            if fresh:
                conn.client_buffer.extend(fresh)
                self._classify(conn)
                self._cap_buffer(conn, "client")
                forwarded.extend(self._normalized_packets(packet, conn, fresh))
        else:
            forwarded.append(packet)  # bare ACKs keep the far handshake moving
        if flags & 0x01:  # FIN
            conn.closed = True
            fin = TCPSegment(
                sport=conn.client_port,
                dport=conn.server_port,
                seq=conn.emit_seq,
                ack=tcp.ack,
                flags=_FIN_ACK,
            )
            forwarded.append(IPPacket(src=conn.client, dst=conn.server, transport=fin))
        return forwarded

    def _server_to_client(self, packet: IPPacket, tcp: TCPSegment) -> list[IPPacket]:
        key = (packet.dst, tcp.dport, packet.src, tcp.sport)
        conn = self._connections.get(key)  # touches the LRU chain
        if conn is not None and tcp.payload:
            conn.server_buffer.extend(tcp.payload)
            self._classify(conn)
            self._cap_buffer(conn, "server")
        return [packet]

    def _cap_buffer(self, conn: _ProxiedConnection, side: str) -> None:
        """Tail-scan degrade: trim a capped buffer's head after scanning it.

        The scanner has already walked everything up to the current
        watermark, so trimming only forfeits *future* matches that would
        span bytes older than the retained tail window.
        """
        cap = self.scan_buffer_cap
        if cap is None:
            return
        buffer = conn.client_buffer if side == "client" else conn.server_buffer
        excess = len(buffer) - cap
        if excess <= 0:
            return
        del buffer[:excess]
        if side == "client":
            conn.trimmed_client += excess
            conn.client_scan_pos = max(0, conn.client_scan_pos - excess)
        else:
            conn.trimmed_server += excess
            conn.server_scan_pos = max(0, conn.server_scan_pos - excess)
        if obs_metrics.METRICS is not None:
            obs_metrics.METRICS.inc("mbx.shed.scan_trimmed_bytes", excess)

    # ------------------------------------------------------------------
    # host-grade validation: the proxy is an endpoint
    # ------------------------------------------------------------------
    def _host_grade_valid(self, packet: IPPacket, tcp: TCPSegment) -> bool:
        if not (
            packet.has_valid_version()
            and packet.has_valid_ihl()
            and packet.has_valid_total_length()
            and packet.has_valid_checksum()
        ):
            return False
        if packet.padded_options and not packet.has_wellformed_options():
            return False
        if not tcp.has_valid_data_offset():
            return False
        if not tcp.verify_checksum(packet.src, packet.dst):
            return False
        if not tcp.flags.is_valid_combination():
            return False
        flags = int(tcp.flags)
        if tcp.payload and not flags & 0x06 and not flags & 0x10:  # data needs SYN/RST/ACK
            return False
        return True

    # ------------------------------------------------------------------
    # stream machinery
    # ------------------------------------------------------------------
    def _reassemble(self, conn: _ProxiedConnection, tcp: TCPSegment) -> bytes:
        seq, payload = tcp.seq, tcp.payload
        ahead = (seq - conn.expected_seq) & 0xFFFFFFFF
        if 0 < ahead < 0x8000_0000:
            conn.ooo.setdefault(seq, payload)
            return b""
        if ahead != 0:
            behind = 0x1_0000_0000 - ahead
            if behind >= len(payload):
                return b""
            payload = payload[behind:]
            seq = conn.expected_seq
        fresh = bytearray(payload)
        conn.expected_seq = (conn.expected_seq + len(payload)) & 0xFFFFFFFF
        while conn.expected_seq in conn.ooo:
            chunk = conn.ooo.pop(conn.expected_seq)
            fresh.extend(chunk)
            conn.expected_seq = (conn.expected_seq + len(chunk)) & 0xFFFFFFFF
        return bytes(fresh)

    def _normalized_packets(
        self, original: IPPacket, conn: _ProxiedConnection, data: bytes
    ) -> list[IPPacket]:
        packets = []
        for offset in range(0, len(data), PROXY_MSS):
            chunk = data[offset : offset + PROXY_MSS]
            segment = TCPSegment(
                sport=conn.client_port,
                dport=conn.server_port,
                seq=conn.emit_seq,
                ack=original.tcp.ack if original.tcp else 0,
                flags=_ACK_PSH,
                payload=chunk,
            )
            conn.emit_seq = (conn.emit_seq + len(chunk)) & 0xFFFFFFFF
            packets.append(IPPacket(src=conn.client, dst=conn.server, transport=segment))
        return packets

    # ------------------------------------------------------------------
    # classification
    # ------------------------------------------------------------------
    def _classify(self, conn: _ProxiedConnection) -> None:
        if conn.throttled:
            return
        if not conn.client_matched:
            if conn.trimmed_client == 0:
                # Head intact: judge (and cache) the anchor from live bytes.
                conn.anchored = bytes(conn.client_buffer[:4]).startswith(ANCHORS)
            anchored = conn.anchored
            conn.client_scan_pos = self._scan_keywords(
                conn.client_buffer, self.client_keywords, conn.client_found, conn.client_scan_pos
            )
            if anchored and len(conn.client_found) == len(self.client_keywords):
                conn.client_matched = True
        if not conn.server_matched:
            conn.server_scan_pos = self._scan_keywords(
                conn.server_buffer, self.server_keywords, conn.server_found, conn.server_scan_pos
            )
            if len(conn.server_found) == len(self.server_keywords):
                conn.server_matched = True
        if conn.client_matched and conn.server_matched:
            conn.throttled = True
            key = FiveTuple(
                src=conn.client,
                sport=conn.client_port,
                dst=conn.server,
                dport=conn.server_port,
                protocol=6,
            )
            self.policy_state.throttle(key, self.throttle_rate_bps)

    @staticmethod
    def _scan_keywords(
        buffer: bytearray, keywords: tuple[bytes, ...], found: set[bytes], pos: int
    ) -> int:
        """Search bytes past watermark *pos* for keywords not yet found.

        Rewinds by ``len(keyword) - 1`` so matches spanning the old boundary
        are still caught; returns the new watermark.  Equivalent to
        ``k in buffer`` over the full buffer because found-ness is monotonic
        (the buffer only grows), without the quadratic rescans.
        """
        for keyword in keywords:
            if keyword not in found:
                start = pos - len(keyword) + 1
                if buffer.find(keyword, start if start > 0 else 0) != -1:
                    found.add(keyword)
        return len(buffer)

    def _feed_fragment(self, packet: IPPacket) -> IPPacket | None:
        key = (packet.src, packet.dst, packet.identification, packet.effective_protocol)
        bucket = self._fragments.get(key)
        if bucket is None:
            bucket = []
            self._fragments.insert(key, bucket)  # bounds evict oldest group
        bucket.append(packet)
        whole = reassemble_fragments(bucket)
        if whole is not None:
            self._fragments.pop(key)
        return whole
