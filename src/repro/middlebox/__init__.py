"""A configurable DPI middlebox engine and per-environment profiles.

The engine (:mod:`repro.middlebox.engine`) implements the mechanisms the
paper reverse-engineered from operational classifiers: keyword rules over
HTTP payloads / SNI fields / STUN attributes, per-packet vs. stream
reassembly, packet-count inspection windows, match-and-forget semantics,
incomplete header validation, classification flushing, and policy actions
(throttling, zero-rating, RST/block-page censorship).

Profiles in :mod:`repro.middlebox.profiles` configure the engine to behave
like each middlebox the paper evaluated.
"""

from repro.middlebox.accounting import UsageCounter
from repro.middlebox.engine import DPIMiddlebox, ReassemblyMode
from repro.middlebox.policy import BlockBehavior, PolicyAction, RulePolicy
from repro.middlebox.proxy import TransparentHTTPProxy
from repro.middlebox.rules import MatchRule
from repro.middlebox.validation import MiddleboxValidation

__all__ = [
    "UsageCounter",
    "DPIMiddlebox",
    "ReassemblyMode",
    "BlockBehavior",
    "PolicyAction",
    "RulePolicy",
    "TransparentHTTPProxy",
    "MatchRule",
    "MiddleboxValidation",
]
