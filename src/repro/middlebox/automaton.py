"""Byte-level Aho-Corasick automaton with resumable per-flow scan state.

This is the DPI engine's pattern-matching core: one automaton per interned
pattern set, built once and shared by every compiled rule view that uses
the same patterns.  The automaton is the *semantic* authority — its dense
goto/fail/output tables define exactly which patterns occur where — and a
derived one-pass regex alternation acts as the bulk executor so large
chunks are walked at C speed instead of one Python dict lookup per byte.

Tables
------
``goto``    list of per-state ``{byte: next_state}`` dicts (state 0 = root).
``fail``    flat list: the longest proper suffix of each state's path that
            is itself a path in the trie.
``out``     flat list of *bitmasks*: bit *i* set iff pattern *i* ends at
            this state (directly or via a fail-link suffix).

Pattern hits are reported as an int bitmask over pattern ids — cheap to
union, intersect and test against the rule programs layered on top by
:mod:`repro.middlebox.ruleindex`.

Resumable streams
-----------------
:class:`StreamScan` carries the automaton node a flow's stream has reached,
so appended bytes are fed through the automaton exactly once — no
max-pattern-length overlap window is ever re-scanned.  For large appends
the hybrid path block-scans the new region with the derived regex and uses
the carried node only across the chunk boundary; because every trie path is
at most ``max_len`` deep, the resume node after a chunk is recomputed from
the last ``max_len`` bytes alone.

Exact equivalence with per-pattern ``pattern in buffer`` search — including
overlapping, nested and chunk-boundary-spanning occurrences — is enforced
by the differential suites in ``tests/test_ruleindex.py`` and
``tests/test_automaton_differential.py``.
"""

from __future__ import annotations

import re
import time
from typing import Iterable, Sequence

from repro.middlebox import rulecache
from repro.obs import coverage as obs_coverage
from repro.obs import metrics as obs_metrics

Buffer = bytes | bytearray | memoryview

#: Appends no longer than ``max_len`` times this walk the automaton
#: directly; the hybrid regex path pays ~3*max_len Python steps of state
#: maintenance anyway, so tiny appends are cheaper fed byte-by-byte.
_INLINE_FACTOR = 2


def mask_to_ids(mask: int) -> set[int]:
    """Expand a hit bitmask into the set of pattern ids it encodes."""
    ids = set()
    while mask:
        low = mask & -mask
        ids.add(low.bit_length() - 1)
        mask ^= low
    return ids


class PatternAutomaton:
    """An Aho-Corasick automaton over a fixed tuple of byte patterns.

    Instances are immutable once built; obtain shared ones through
    :func:`automaton_for` so equal pattern sets compile exactly once per
    process.
    """

    __slots__ = (
        "patterns",
        "max_len",
        "states",
        "goto",
        "fail",
        "out",
        "all_mask",
        "digest",
        "_regex",
        "_closure_masks",
    )

    def __init__(self, patterns: Sequence[bytes]) -> None:
        started = time.perf_counter()
        self.patterns: tuple[bytes, ...] = tuple(patterns)
        self.max_len = max((len(p) for p in self.patterns), default=0)
        self._build_tables()
        self._build_block_regex()
        self.all_mask = (1 << len(self.patterns)) - 1
        self.states = len(self.goto)
        #: Stable cross-process identity (``id()`` differs per process and
        #: per intern-cache churn; coverage arrays must merge by content).
        self.digest = obs_coverage.automaton_digest(self.patterns)
        _record_build(self, time.perf_counter() - started)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def _build_tables(self) -> None:
        goto: list[dict[int, int]] = [{}]
        out: list[int] = [0]
        for pid, pattern in enumerate(self.patterns):
            node = 0
            for byte in pattern:
                nxt = goto[node].get(byte)
                if nxt is None:
                    nxt = len(goto)
                    goto[node][byte] = nxt
                    goto.append({})
                    out.append(0)
                node = nxt
            out[node] |= 1 << pid
        fail = [0] * len(goto)
        # Breadth-first: a state's fail link is always shallower, so parents
        # are finalized before children and output masks propagate in one pass.
        queue: list[int] = list(goto[0].values())
        head = 0
        while head < len(queue):
            state = queue[head]
            head += 1
            for byte, child in goto[state].items():
                queue.append(child)
                f = fail[state]
                while byte not in goto[f] and f:
                    f = fail[f]
                fail[child] = goto[f].get(byte, 0) if goto[f].get(byte, 0) != child else 0
                out[child] |= out[fail[child]]
        self.goto = goto
        self.fail = fail
        self.out = out

    def _build_block_regex(self) -> None:
        """The bulk executor: a zero-width-lookahead alternation.

        Of all patterns occurring at one text position, the longest captures
        and every other is necessarily a prefix of it, so crediting the
        prefix closure of the captured alternative recovers exact
        per-pattern substring semantics in a single C-speed pass.
        """
        if not self.patterns:
            self._regex = None
            self._closure_masks = []
            return
        order = sorted(range(len(self.patterns)), key=lambda i: -len(self.patterns[i]))
        alternation = b"|".join(b"(" + re.escape(self.patterns[i]) + b")" for i in order)
        self._regex = re.compile(b"(?=" + alternation + b")")
        self._closure_masks = []
        for i in order:
            captured = self.patterns[i]
            mask = 0
            for j, p in enumerate(self.patterns):
                if captured.startswith(p):
                    mask |= 1 << j
            self._closure_masks.append(mask)

    # ------------------------------------------------------------------
    # scanning
    # ------------------------------------------------------------------
    def advance(self, node: int, data: Buffer) -> tuple[int, int]:
        """Feed *data* through the automaton from *node*.

        Returns ``(final node, hit mask)`` — bit *i* set iff pattern *i*
        ends somewhere within the fed bytes (given the stream prefix the
        node encodes).
        """
        goto = self.goto
        fail = self.fail
        out = self.out
        mask = 0
        for byte in bytes(data):
            g = goto[node].get(byte)
            while g is None and node:
                node = fail[node]
                g = goto[node].get(byte)
            node = g if g is not None else 0
            m = out[node]
            if m:
                mask |= m
        return node, mask

    def advance_counted(
        self, node: int, data: Buffer, recorder: "obs_coverage.CoverageRecorder"
    ) -> tuple[int, int]:
        """:meth:`advance` with per-state/edge visit accounting.

        The coverage executor: semantically identical to :meth:`advance`
        (same loop, same tables), but it records every state reached and
        every goto-edge traversed into *recorder*.  Fail-link hops are not
        counted — they revisit already-counted states without consuming
        input.  Scans take this path instead of the bulk regex whenever
        coverage is enabled, so each stream byte is walked (and counted)
        exactly once.
        """
        recorder.register_automaton(self.digest, self.states, len(self.patterns))
        goto = self.goto
        fail = self.fail
        out = self.out
        mask = 0
        nodes: list[int] = []
        edges = 0
        for byte in bytes(data):
            g = goto[node].get(byte)
            while g is None and node:
                node = fail[node]
                g = goto[node].get(byte)
            if g is not None:
                node = g
                edges += 1
            else:
                node = 0
            nodes.append(node)
            m = out[node]
            if m:
                mask |= m
        recorder.automaton_walk(self.digest, nodes, edges)
        return node, mask

    def resume_node(self, buffer: Buffer, end: int) -> int:
        """The automaton state after ``buffer[:end]``, recomputed from its tail.

        Every trie path is at most ``max_len`` deep, so the state — the
        longest suffix of the stream that is a trie path — is fully
        determined by the last ``max_len`` bytes.
        """
        start = end - self.max_len
        tail = memoryview(buffer)[start if start > 0 else 0 : end]
        return self.advance(0, tail)[0]

    def scan_mask(self, buffer: Buffer, start: int = 0, end: int | None = None) -> int:
        """Bitmask of patterns occurring anywhere in ``buffer[start:end]``."""
        regex = self._regex
        if regex is None:
            return 0
        if end is None:
            end = len(buffer)
        coverage = obs_coverage.COVERAGE
        if coverage is not None:
            # A window scan from the root is the automaton's own definition
            # of "occurs within the window" (the differential suites pin
            # regex == advance); the counted walk keeps state/edge tallies.
            return self.advance_counted(
                0, memoryview(buffer)[start:end], coverage
            )[1]
        mask = 0
        closure = self._closure_masks
        all_mask = self.all_mask
        for match in regex.finditer(buffer, start, end):
            mask |= closure[match.lastindex - 1]
            if mask == all_mask:
                break
        return mask


class StreamScan:
    """Per-flow, per-direction resumable scan state.

    ``watermark`` counts stream bytes already fed through the automaton,
    ``node`` is the automaton state those bytes reached, and ``mask``
    accumulates every pattern seen so far.  Stream buffers only grow by
    appends (the byte limit truncates the tail, never the head), so a
    pattern occurs in the current buffer iff some feed saw it — appended
    bytes are visited exactly once, with no overlap-window re-scan.
    """

    __slots__ = ("watermark", "node", "mask")

    def __init__(self) -> None:
        self.watermark = 0
        self.node = 0
        self.mask = 0

    @property
    def seen(self) -> set[int]:
        """The accumulated hits as a set of pattern ids."""
        return mask_to_ids(self.mask)

    def feed(self, scanner, buffer: Buffer) -> set[int]:
        """Scan bytes appended since the last feed; return all patterns seen.

        The historical set-returning call shape: *scanner* may be a
        :class:`PatternAutomaton` or anything carrying one under an
        ``automaton`` attribute (``ruleindex.MultiPatternScanner``).  Hot
        paths use :meth:`feed_mask` directly.
        """
        automaton = getattr(scanner, "automaton", scanner)
        return mask_to_ids(self.feed_mask(automaton, buffer))

    def feed_mask(self, automaton: PatternAutomaton, buffer: Buffer) -> int:
        """Feed bytes appended since the last call; return the full hit mask."""
        end = len(buffer)
        wm = self.watermark
        if end <= wm:
            return self.mask
        max_len = automaton.max_len
        if max_len == 0:
            self.watermark = end
            return self.mask
        coverage = obs_coverage.COVERAGE
        if coverage is not None:
            # Counted walk: each appended byte visits the automaton exactly
            # once, so state/edge tallies are exact per stream byte.  The
            # hybrid path below would re-walk boundary bytes and tail bytes
            # (resume_node), inflating the counts nondeterministically with
            # chunking.
            self.node, hits = automaton.advance_counted(
                self.node, memoryview(buffer)[wm:end], coverage
            )
            self.mask |= hits
        elif end - wm <= max_len * _INLINE_FACTOR:
            # Small append: walk it directly from the carried node.
            self.node, hits = automaton.advance(self.node, memoryview(buffer)[wm:end])
            self.mask |= hits
        else:
            # Hybrid: matches fully inside the new region come from the bulk
            # regex; matches spanning the boundary end within the first
            # max_len-1 new bytes and fall out of the carried-node walk.
            if wm and max_len > 1:
                head_end = wm + max_len - 1
                if head_end > end:
                    head_end = end
                _, hits = automaton.advance(self.node, memoryview(buffer)[wm:head_end])
                self.mask |= hits
            self.mask |= automaton.scan_mask(buffer, wm, end)
            self.node = automaton.resume_node(buffer, end)
        self.watermark = end
        return self.mask


# ----------------------------------------------------------------------
# interning
# ----------------------------------------------------------------------
#: Compiled automata by pattern tuple — the O(1) lookup memo for the compile
#: path.  Lifetime is governed by the process-wide dependency cache
#: (:data:`repro.middlebox.rulecache.RULE_CACHE`): every build registers an
#: ``("automaton", patterns)`` entry whose invalidation pops the memo and
#: cascades to every compiled view built over the automaton, so
#: hypothesis-style churn (thousands of tiny throwaway rule sets) stays
#: bounded without stranding dependents.
_INTERNED: dict[tuple[bytes, ...], PatternAutomaton] = {}


def automaton_cache_key(patterns: tuple[bytes, ...]) -> tuple[str, tuple[bytes, ...]]:
    """The dependency-cache key under which *patterns*' automaton lives."""
    return ("automaton", patterns)


def _automaton_invalidated(key: object, automaton: object, reason: str) -> None:
    """Dependency-cache eviction/expiry: drop the lookup memo entry too."""
    _INTERNED.pop(key[1], None)  # type: ignore[index]


def automaton_for(patterns: Iterable[bytes]) -> PatternAutomaton:
    """The shared automaton for *patterns* (built once per process)."""
    metrics = obs_metrics.METRICS
    if metrics is not None:
        # Unlike builds (memoized, so whether one happens depends on intern
        # state), lookups fire on every compiled-view construction — the
        # deterministic ``mbx.automaton.*`` series headlined by the dashboard.
        metrics.inc("mbx.automaton.lookups")
    key = tuple(patterns)
    automaton = _INTERNED.get(key)
    if automaton is None:
        automaton = _INTERNED[key] = PatternAutomaton(key)
        rulecache.RULE_CACHE.put(
            automaton_cache_key(key), automaton, on_invalidate=_automaton_invalidated
        )
    else:
        rulecache.RULE_CACHE.touch(automaton_cache_key(key))
    return automaton


def _record_build(automaton: PatternAutomaton, seconds: float) -> None:
    """Build telemetry (``mbx.automaton.*``).

    Builds are a per-process, memoized event — which process compiles what
    depends on worker scheduling and intern-cache state — so these metrics
    are process-local facts, excluded from the cross-process snapshot
    identity contract (see ``tests/test_obs_live.py``).
    """
    metrics = obs_metrics.METRICS
    if metrics is None:
        return
    metrics.inc("mbx.automaton.builds")
    metrics.inc("mbx.automaton.states", automaton.states)
    metrics.inc("mbx.automaton.patterns", len(automaton.patterns))
    metrics.inc("mbx.automaton.build_seconds", round(seconds, 6))
    metrics.observe("mbx.automaton.build_us", seconds * 1e6)
