"""Cellular data-usage accounting (the zero-rating detection signal).

T-Mobile's Binge On is detected through the account's data-usage counter:
classified (zero-rated) traffic does not count against the quota.  The paper
notes the counter "may either be slightly out of date, or include data from
background traffic", forcing ≥200 KB replays for reliable inference (§6.2).
Both imperfections are modeled here.
"""

from __future__ import annotations

import random

from repro.netsim.element import NetworkElement, TransitContext
from repro.netsim.shaper import PolicyState
from repro.packets.flow import Direction, FiveTuple
from repro.packets.ip import IPPacket


class UsageCounter(NetworkElement):
    """Counts quota bytes; zero-rated flows are exempt.

    Args:
        policy_state: where the middlebox marks zero-rated flows.
        noise_bytes: maximum background-traffic noise added per reading.
        seed: RNG seed for deterministic noise.
    """

    name = "usage-counter"

    def __init__(
        self,
        policy_state: PolicyState,
        noise_bytes: int = 60_000,
        seed: int = 2017,
    ) -> None:
        self.policy_state = policy_state
        self.noise_bytes = noise_bytes
        self._rng = random.Random(seed)
        self._counted = 0
        self._background = 0

    def process(
        self, packet: IPPacket, direction: Direction, ctx: TransitContext
    ) -> list[IPPacket]:
        """Charge non-zero-rated payload bytes to the quota; always forward."""
        payload_len = len(packet.app_payload)
        if payload_len:
            # Flow keys are only needed to honor zero-rating marks; with
            # none set (the common case) every payload byte is counted.
            if self.policy_state.zero_rated_flows and self.policy_state.is_zero_rated(
                FiveTuple.of(packet)
            ):
                return [packet]
            self._counted += payload_len
        return [packet]

    def read(self) -> int:
        """A quota reading: true usage plus accumulated background noise.

        Each read may pull in more background traffic, so two consecutive
        reads can differ even with no test traffic in between — exactly the
        effect that forces large replays.
        """
        self._background += self._rng.randint(0, self.noise_bytes)
        return self._counted + self._background

    @property
    def exact(self) -> int:
        """Ground-truth usage (tests only; the detection code uses read())."""
        return self._counted

    def reset(self) -> None:
        """Zero the counter (a new billing window)."""
        self._counted = 0
        self._background = 0
