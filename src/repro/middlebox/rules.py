"""Traffic-classification rules.

The paper found operational classifiers matching keywords in HTTP payloads
(hostnames, content types, user agents), TLS SNI fields (which appear in
cleartext inside the ClientHello), and protocol-specific fields such as the
STUN ``MS-SERVICE-QUALITY`` attribute.  :class:`MatchRule` expresses all of
these as byte-pattern searches over whatever buffer the engine's reassembly
mode produces, optionally restricted by port, direction, protocol, and
packet position.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.middlebox.policy import RulePolicy
from repro.traffic.stun import ATTR_MS_SERVICE_QUALITY, parse_stun_attributes


@dataclass
class MatchRule:
    """One classification rule.

    Attributes:
        name: label shown in classification readouts ("binge-on", ...).
        keywords: byte patterns searched in the inspected buffer.
        require_all: when True all keywords must appear; otherwise any one.
        protocol: "tcp", "udp" or "any".
        ports: server ports the rule applies to (None = every port).
        direction: "client", "server" or "both" — whose payloads to search.
        position: when set, the rule only matches in the payload packet at
            this index within the flow (the testbed's STUN rule matched only
            the first client packet).
        stun_attribute: when set, the rule instead requires a parseable STUN
            message carrying this attribute type.
        policy: what to do on match.
    """

    name: str
    keywords: list[bytes] = field(default_factory=list)
    require_all: bool = False
    protocol: str = "tcp"
    ports: frozenset[int] | None = None
    direction: str = "client"
    position: int | None = None
    stun_attribute: int | None = None
    policy: RulePolicy = field(default_factory=RulePolicy)

    def __post_init__(self) -> None:
        if self.protocol not in ("tcp", "udp", "any"):
            raise ValueError(f"bad protocol {self.protocol!r}")
        if self.direction not in ("client", "server", "both"):
            raise ValueError(f"bad direction {self.direction!r}")
        if not self.keywords and self.stun_attribute is None:
            raise ValueError("a rule needs keywords or a STUN attribute")
        if self.ports is not None:
            self.ports = frozenset(self.ports)

    # ------------------------------------------------------------------
    # applicability
    # ------------------------------------------------------------------
    def applies_to(self, protocol: str, server_port: int, direction: str) -> bool:
        """Whether the rule is in scope for this flow context."""
        if self.protocol != "any" and self.protocol != protocol:
            return False
        if self.ports is not None and server_port not in self.ports:
            return False
        if self.direction != "both" and self.direction != direction:
            return False
        return True

    # ------------------------------------------------------------------
    # matching
    # ------------------------------------------------------------------
    def matches_buffer(self, buffer: bytes) -> bool:
        """Search the reassembled (or per-packet) buffer for the rule's patterns."""
        if self.stun_attribute is not None:
            attributes = parse_stun_attributes(buffer)
            return attributes is not None and self.stun_attribute in attributes
        if self.require_all:
            return all(keyword in buffer for keyword in self.keywords)
        return any(keyword in buffer for keyword in self.keywords)


def skype_stun_rule(policy: RulePolicy) -> MatchRule:
    """The testbed's Skype rule: MS-SERVICE-QUALITY in the first client packet."""
    return MatchRule(
        name="skype-stun",
        keywords=[],
        protocol="udp",
        direction="client",
        position=0,
        stun_attribute=ATTR_MS_SERVICE_QUALITY,
        policy=policy,
    )
