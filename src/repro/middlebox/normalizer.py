"""A norm-style traffic normalizer (Kreibich et al. 2001) — the countermeasure.

§4.3's "Evasion countermeasures" discussion: a network can deploy a
normalizer ahead of its classifier that (a) drops lib·erate's inert packets,
(b) raises suspiciously low TTLs so nothing can die between the classifier
and the server, and (c) reassembles and re-segments TCP streams so splitting
and reordering present the classifier with clean, in-order, coalesced data.
The paper found, strikingly, that none of the operational middleboxes had
deployed these 15-year-old defenses.

The price the paper predicts is also modeled: TTL normalization un-inerts
TTL-limited packets (their junk now *reaches the server*), and full
reassembly costs state.  The classification-flushing techniques survive by
construction — no normalizer can force a classifier to retain state longer.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.middlebox.flowtable import FlowTable
from repro.netsim.element import NetworkElement, TransitContext
from repro.obs import trace as obs_trace
from repro.packets.flow import Direction
from repro.packets.fragment import reassemble_fragments
from repro.packets.ip import IPPacket
from repro.packets.tcp import TCPFlags, TCPSegment

_ACK_PSH = TCPFlags.ACK | TCPFlags.PSH

NORMALIZED_MSS = 1460


@dataclass
class _NormalizedFlow:
    expected_seq: int
    ooo: dict[int, bytes] = field(default_factory=dict)


class TrafficNormalizer(NetworkElement):
    """Normalizes client→server TCP traffic ahead of a classifier.

    Args:
        min_ttl: packets arriving with a smaller TTL are raised to this
            value (defeats TTL-limited insertion, with the paper's caveat
            that the packet then reaches the server).
        strip_ip_options: remove all IP options (defeats the options rows).
        coalesce: reassemble and re-emit in-order MSS segments (defeats
            splitting and reordering).
        max_flows: bound on concurrently-coalescing flows; beyond it the
            least-recently-active flow's reassembly state is evicted (its
            later segments pass through un-coalesced, a safe degradation).
        fragment_capacity: bound on concurrently-reassembling fragment
            groups.
    """

    def __init__(
        self,
        min_ttl: int = 32,
        strip_ip_options: bool = True,
        coalesce: bool = True,
        name: str = "normalizer",
        max_flows: int | None = 65536,
        fragment_capacity: int | None = 4096,
    ) -> None:
        self.name = name
        self.min_ttl = min_ttl
        self.strip_ip_options = strip_ip_options
        self.coalesce = coalesce
        self.dropped: list[IPPacket] = []
        self._flows: FlowTable[tuple[str, int, str, int], _NormalizedFlow] = FlowTable(
            capacity=max_flows, name="normalizer"
        )
        self._fragments: FlowTable[tuple[str, str, int, int], list[IPPacket]] = FlowTable(
            capacity=fragment_capacity, name="normalizer_fragments"
        )

    # ------------------------------------------------------------------
    # element interface
    # ------------------------------------------------------------------
    def process(
        self, packet: IPPacket, direction: Direction, ctx: TransitContext
    ) -> list[IPPacket]:
        """Validate, de-fragment, raise TTLs, strip options, coalesce streams."""
        if direction is not Direction.CLIENT_TO_SERVER:
            return [packet]
        now = ctx.clock.now
        if packet.is_fragment:
            whole = self._feed_fragment(packet)
            if whole is None:
                return []
            packet = whole
        reason = self._malformed_reason(packet)
        if reason is not None:
            self.dropped.append(packet)
            if obs_trace.TRACER is not None:
                # Provenance: a normalizer drop is a verdict-shaping decision
                # — the classifier never sees this packet at all.
                obs_trace.TRACER.emit(
                    "norm.drop",
                    now,
                    element=self.name,
                    reason=reason,
                    src=packet.src,
                    dst=packet.dst,
                )
            return []
        packet = self._scrub(packet, now)
        tcp = packet.tcp
        if tcp is None or packet.effective_protocol != 6 or not self.coalesce:
            return [packet]
        return self._coalesce_tcp(packet, tcp, now)

    def reset(self) -> None:
        """Forget all flow and fragment state."""
        self.dropped.clear()
        self._flows.clear()
        self._fragments.clear()

    def _feed_fragment(self, packet: IPPacket) -> IPPacket | None:
        key = (packet.src, packet.dst, packet.identification, packet.effective_protocol)
        bucket = self._fragments.get(key)
        if bucket is None:
            bucket = []
            self._fragments.insert(key, bucket)  # bounds evict oldest group
        bucket.append(packet)
        whole = reassemble_fragments(bucket)
        if whole is not None:
            self._fragments.pop(key)
        return whole

    # ------------------------------------------------------------------
    # the norm rule set
    # ------------------------------------------------------------------
    def _malformed_reason(self, packet: IPPacket) -> str | None:
        """Why the norm rule set rejects *packet* (None = well-formed).

        The reason string is the provenance payload of ``norm.drop`` — it
        names the exact rule an inert packet tripped, which is the evidence
        the paper's countermeasure discussion turns on.
        """
        if not packet.has_valid_version():
            return "ip-version"
        if not packet.has_valid_ihl():
            return "ip-ihl"
        if not packet.has_valid_total_length():
            return "ip-total-length"
        if not packet.has_valid_checksum():
            return "ip-checksum"
        if not packet.has_known_protocol():
            return "ip-protocol"
        if packet.padded_options and not packet.has_wellformed_options():
            return "ip-options"
        tcp = packet.tcp
        if tcp is not None and packet.effective_protocol == 6:
            if not tcp.has_valid_data_offset():
                return "tcp-data-offset"
            if not tcp.verify_checksum(packet.src, packet.dst):
                return "tcp-checksum"
            if not tcp.flags.is_valid_combination():
                return "tcp-flags"
            flags = int(tcp.flags)
            if tcp.payload and not flags & 0x06 and not flags & 0x10:
                return "tcp-payload-flags"
        udp = packet.udp
        if udp is not None and packet.effective_protocol == 17:
            if not udp.verify_checksum(packet.src, packet.dst):
                return "udp-checksum"
            if not udp.has_valid_length():
                return "udp-length"
        return None

    def _scrub(self, packet: IPPacket, now: float) -> IPPacket:
        changes: dict[str, object] = {}
        if packet.ttl < self.min_ttl:
            changes["ttl"] = self.min_ttl
        if self.strip_ip_options and packet.padded_options:
            changes["options"] = b""
            changes["ihl"] = None
        if changes:
            if obs_trace.TRACER is not None:
                # Provenance: a scrub silently rewrites what the classifier
                # (and the server!) will see — e.g. a raised TTL un-inerts a
                # TTL-limited insertion, the paper's predicted cost.
                obs_trace.TRACER.emit(
                    "norm.scrub",
                    now,
                    element=self.name,
                    src=packet.src,
                    dst=packet.dst,
                    ttl_raised="ttl" in changes,
                    options_stripped="options" in changes,
                )
            changes["checksum"] = None
            packet = packet.copy(**changes)
        return packet

    # ------------------------------------------------------------------
    # stream coalescing
    # ------------------------------------------------------------------
    def _coalesce_tcp(
        self, packet: IPPacket, tcp: TCPSegment, now: float
    ) -> list[IPPacket]:
        key = (packet.src, tcp.sport, packet.dst, tcp.dport)
        flags = int(tcp.flags)
        if flags & 0x12 == 0x02:  # SYN without ACK
            self._flows.insert(key, _NormalizedFlow(expected_seq=(tcp.seq + 1) & 0xFFFFFFFF))
            return [packet]
        if flags & 0x04:  # RST
            self._flows.pop(key)
            return [packet]
        flow = self._flows.get(key)  # touches the LRU chain
        if flow is None or not tcp.payload:
            return [packet]
        fresh = self._reassemble(flow, tcp)
        if not fresh:
            return []  # out-of-order or duplicate: held until in order
        packets = self._emit(packet, tcp, flow, fresh)
        if obs_trace.TRACER is not None and (
            len(packets) != 1 or packets[0].tcp.payload != tcp.payload
        ):
            # Provenance: the classifier sees these re-segmented bytes, not
            # the wire packet — splitting/reordering evasion is undone here.
            obs_trace.TRACER.emit(
                "norm.coalesce",
                now,
                element=self.name,
                src=packet.src,
                dst=packet.dst,
                sport=tcp.sport,
                dport=tcp.dport,
                in_bytes=len(tcp.payload),
                out_bytes=len(fresh),
                out_segments=len(packets),
            )
        return packets

    def _reassemble(self, flow: _NormalizedFlow, tcp: TCPSegment) -> bytes:
        seq, payload = tcp.seq, tcp.payload
        ahead = (seq - flow.expected_seq) & 0xFFFFFFFF
        if 0 < ahead < 0x8000_0000:
            flow.ooo.setdefault(seq, payload)
            return b""
        if ahead != 0:
            behind = 0x1_0000_0000 - ahead
            if behind >= len(payload):
                return b""
            payload = payload[behind:]
        fresh = bytearray(payload)
        flow.expected_seq = (flow.expected_seq + len(payload)) & 0xFFFFFFFF
        while flow.expected_seq in flow.ooo:
            chunk = flow.ooo.pop(flow.expected_seq)
            fresh.extend(chunk)
            flow.expected_seq = (flow.expected_seq + len(chunk)) & 0xFFFFFFFF
        return bytes(fresh)

    def _emit(
        self, original: IPPacket, tcp: TCPSegment, flow: _NormalizedFlow, data: bytes
    ) -> list[IPPacket]:
        start_seq = (flow.expected_seq - len(data)) & 0xFFFFFFFF
        packets = []
        for offset in range(0, len(data), NORMALIZED_MSS):
            chunk = data[offset : offset + NORMALIZED_MSS]
            segment = TCPSegment(
                sport=tcp.sport,
                dport=tcp.dport,
                seq=(start_seq + offset) & 0xFFFFFFFF,
                ack=tcp.ack,
                flags=_ACK_PSH | (tcp.flags & TCPFlags.FIN),
                payload=chunk,
            )
            packets.append(
                IPPacket(src=original.src, dst=original.dst, transport=segment, ttl=original.ttl)
            )
        return packets
