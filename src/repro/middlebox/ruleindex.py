"""Precompiled rule index: rule programs over an Aho-Corasick automaton.

The naive matcher re-runs ``keyword in buffer`` for every keyword of every
rule on every packet, re-scanning the whole reassembled stream each time.
This module compiles a rule list once into per-(protocol, port, direction)
views.  Each view interns its keywords into one shared
:class:`~repro.middlebox.automaton.PatternAutomaton` (every rule served by
a single sweep per byte) and lowers its rules to small bitmask programs
over the automaton's pattern-id hits:

* ``require_any`` rules collapse into a per-pattern *order table* — the
  minimum rule order that fires when that pattern is seen — so resolving
  the first match costs one table lookup per distinct pattern hit;
* ``require_all`` rules become ``(order, mask)`` programs satisfied when
  ``hits & mask == mask``;
* the winning order maps straight to its rule through an order→rule dict
  (no linear scan over the view's rule list).

Exact-equivalence contract (verified by the differential tests in
``tests/test_ruleindex.py`` and ``tests/test_automaton_differential.py``):
for any rule list, buffer, payload and packet index,
:meth:`CompiledView.match` returns the same rule the naive per-rule loop
would have picked — first match in rule-list order, position rules only
firing on their packet index, STUN rules parsing the buffer.

The index assumes rules are not mutated after compilation; replacing the
engine's rule *list* is detected and recompiled.  Engines built from the
same rule objects share one interned :class:`CompiledRuleSet` (and thus
its views and automata) via :meth:`CompiledRuleSet.shared`.
"""

from __future__ import annotations

from repro.middlebox import rulecache
from repro.middlebox.automaton import (
    PatternAutomaton,
    StreamScan,
    automaton_cache_key,
    automaton_for,
    mask_to_ids,
)
from repro.middlebox.rules import MatchRule
from repro.obs import coverage as obs_coverage
from repro.traffic.stun import parse_stun_attributes

__all__ = [
    "Buffer",
    "CompiledRuleSet",
    "CompiledView",
    "MultiPatternScanner",
    "StreamScan",
]

Buffer = bytes | bytearray | memoryview


class MultiPatternScanner:
    """One-pass search for every occurrence of any pattern in a byte buffer.

    A thin set-returning facade over the shared automaton: ``scan`` returns
    the set of pattern indices (into the constructor's list) that occur
    anywhere in ``buffer[start:end]`` — identical to running
    ``pattern in buffer[start:end]`` per pattern, in one pass.
    """

    __slots__ = ("patterns", "automaton")

    def __init__(self, patterns: list[bytes]) -> None:
        self.patterns = list(patterns)
        self.automaton = automaton_for(self.patterns)

    @property
    def max_len(self) -> int:
        return self.automaton.max_len

    def scan(self, buffer: Buffer, start: int = 0, end: int | None = None) -> set[int]:
        """All pattern indices occurring in ``buffer[start:end]``."""
        return mask_to_ids(self.automaton.scan_mask(buffer, start, end))


class CompiledView:
    """The rules applicable to one (protocol, server port, direction) context."""

    __slots__ = (
        "rules",
        "scope",
        "automaton",
        "scanner",
        "special",
        "keyword_rules",
        "any_order",
        "any_mask",
        "all_programs",
        "stateless_rules",
        "rule_by_order",
        "has_stun",
    )

    def __init__(
        self, rules: list[tuple[int, MatchRule]], scope: str | None = None
    ) -> None:
        self.rules = rules
        #: Coverage scope winning matches are attributed to — the owning
        #: rule set's content digest, or a view-local one for standalone use.
        self.scope = scope or obs_coverage.ruleset_scope(
            rule.name for _order, rule in rules
        )
        #: order → rule, the final resolution step of :meth:`match`.
        self.rule_by_order: dict[int, MatchRule] = {order: rule for order, rule in rules}
        patterns: list[bytes] = []
        pattern_ids: dict[bytes, int] = {}

        def intern_patterns(rule: MatchRule) -> int:
            mask = 0
            for keyword in rule.keywords:
                pid = pattern_ids.get(keyword)
                if pid is None:
                    pid = pattern_ids[keyword] = len(patterns)
                    patterns.append(keyword)
                mask |= 1 << pid
            return mask

        #: rules needing per-call handling in the stateful path (position
        #: and/or STUN) — evaluated directly, they are rare and fire seldom.
        self.special: list[tuple[int, MatchRule]] = []
        #: (order, pattern mask, require_all) — kept for introspection; the
        #: hot path runs the lowered programs below instead.
        self.keyword_rules: list[tuple[int, int, bool]] = []
        #: pattern id → minimum order among require-any rules containing it.
        any_order: dict[int, int] = {}
        #: (order, pattern mask) programs for require-all rules, in order.
        self.all_programs: list[tuple[int, int]] = []
        #: (order, rule, pattern mask or None) — the stateless path ignores
        #: ``position``, so position keyword rules join the combined scan.
        self.stateless_rules: list[tuple[int, MatchRule, int | None]] = []
        for order, rule in rules:
            if rule.stun_attribute is not None:
                self.special.append((order, rule))
                self.stateless_rules.append((order, rule, None))
                continue
            mask = intern_patterns(rule)
            if rule.position is not None:
                self.special.append((order, rule))
            else:
                self.keyword_rules.append((order, mask, rule.require_all))
                if rule.require_all:
                    self.all_programs.append((order, mask))
                else:
                    bits = mask
                    while bits:
                        low = bits & -bits
                        pid = low.bit_length() - 1
                        if pid not in any_order:  # rules arrive in order
                            any_order[pid] = order
                        bits ^= low
            self.stateless_rules.append((order, rule, mask))
        self.automaton = automaton_for(patterns)
        self.scanner = MultiPatternScanner(patterns)
        self.any_order = any_order
        self.any_mask = 0
        for pid in any_order:
            self.any_mask |= 1 << pid
        self.has_stun = any(rule.stun_attribute is not None for _, rule in self.special)

    def match(
        self,
        buffer: Buffer,
        packet_payload: Buffer,
        index: int,
        scan: StreamScan | None,
    ) -> MatchRule | None:
        """First rule (in rule-list order) matching this inspection step.

        *scan* carries the resumable stream state; ``None`` means *buffer*
        is a standalone per-packet payload and is scanned in full.
        """
        best: int | None = None
        stun_attrs: dict[int, bytes] | None | bool = False  # False = not parsed yet
        for order, rule in self.special:
            if best is not None and order > best:
                break
            if rule.position is not None:
                if index == rule.position and rule.matches_buffer(packet_payload):
                    best = order
                continue
            if stun_attrs is False:
                stun_attrs = parse_stun_attributes(buffer)
            if stun_attrs is not None and rule.stun_attribute in stun_attrs:
                best = order

        if self.keyword_rules:
            if scan is None:
                hits = self.automaton.scan_mask(buffer)
            else:
                hits = scan.feed_mask(self.automaton, buffer)
            if hits:
                any_order = self.any_order
                bits = hits & self.any_mask
                while bits:
                    low = bits & -bits
                    order = any_order[low.bit_length() - 1]
                    if best is None or order < best:
                        best = order
                    bits ^= low
                for order, mask in self.all_programs:
                    if best is not None and order > best:
                        break
                    if hits & mask == mask:
                        best = order
                        break

        if best is None:
            return None
        rule = self.rule_by_order[best]
        coverage = obs_coverage.COVERAGE
        if coverage is not None:
            coverage.rule_hit(self.scope, rule.name)
        return rule

    def match_stateless(self, payload: Buffer) -> MatchRule | None:
        """First matching rule ignoring packet position (Iran-style DPI)."""
        hits: int | None = None
        stun_attrs: dict[int, bytes] | None | bool = False
        for _order, rule, mask in self.stateless_rules:
            if mask is None:
                if stun_attrs is False:
                    stun_attrs = parse_stun_attributes(payload)
                if stun_attrs is not None and rule.stun_attribute in stun_attrs:
                    self._coverage_hit(rule)
                    return rule
                continue
            if hits is None:
                hits = self.automaton.scan_mask(payload)
            if (hits & mask == mask) if rule.require_all else (hits & mask):
                self._coverage_hit(rule)
                return rule
        return None

    def _coverage_hit(self, rule: MatchRule) -> None:
        """Attribute one winning match to the coverage recorder, if live."""
        coverage = obs_coverage.COVERAGE
        if coverage is not None:
            coverage.rule_hit(self.scope, rule.name)


def _ruleset_invalidated(key: object, compiled: object, reason: str) -> None:
    """Dependency-cache eviction/expiry: drop the shared-intern memo entry."""
    CompiledRuleSet._shared.pop(key[1], None)  # type: ignore[index]


class CompiledRuleSet:
    """Lazy per-(protocol, port, direction) views over one rule list.

    Lifetime of compiled artifacts is governed by the process-wide
    dependency cache (:data:`repro.middlebox.rulecache.RULE_CACHE`): each
    set registers a ``("ruleset", ids)`` entry, and each view a
    ``("view", ids, context)`` entry depending on both its rule set and its
    automaton.  Evicting or expiring any layer cascades deterministically —
    dropping a rule set drops its views; dropping an automaton drops every
    view compiled over it — while the per-instance ``_views`` memo keeps the
    per-packet path a single dict lookup.
    """

    __slots__ = ("rules", "scope", "_views", "cache_key")

    #: Interned rule sets keyed by the identity of their rule objects.  The
    #: cached set holds strong references to those rules, so a key's ids can
    #: never be reused by new objects while the entry lives.  Bounded via the
    #: dependency cache (invalidation pops this memo).
    _shared: dict[tuple[int, ...], "CompiledRuleSet"] = {}

    def __init__(self, rules: list[MatchRule]) -> None:
        self.rules = tuple(rules)
        #: Coverage scope shared by every view of this set, so per-context
        #: view hits sum into one per-catalog universe.
        self.scope = obs_coverage.ruleset_scope(rule.name for rule in self.rules)
        self._views: dict[tuple[str, int, str], CompiledView] = {}
        self.cache_key = ("ruleset", tuple(map(id, self.rules)))
        rulecache.RULE_CACHE.put(self.cache_key, self, on_invalidate=_ruleset_invalidated)

    def register_coverage(self, recorder: "obs_coverage.CoverageRecorder") -> None:
        """Declare the full rule universe to *recorder*.

        Registration is what makes *dead* rules reportable: a rule the
        workload never exercises has no hit to announce itself with, so the
        engine declares the whole catalog up front (idempotently) and the
        coverage report subtracts.
        """
        recorder.register_rules(self.scope, (rule.name for rule in self.rules))

    @classmethod
    def shared(cls, rules: list[MatchRule]) -> "CompiledRuleSet":
        """The interned compiled set for these exact rule objects.

        Engines built from the same rule list (the common testbed shape:
        one rule catalog, several middlebox configurations) share one
        compiled set — and therefore its views and automata — instead of
        recompiling per engine.
        """
        key = tuple(map(id, rules))
        compiled = cls._shared.get(key)
        if compiled is None:
            compiled = cls._shared[key] = cls(rules)
        else:
            rulecache.RULE_CACHE.touch(compiled.cache_key)
        return compiled

    def view(self, protocol: str, server_port: int, direction: str) -> CompiledView:
        key = (protocol, server_port, direction)
        view = self._views.get(key)
        if view is None:
            applicable = [
                (order, rule)
                for order, rule in enumerate(self.rules)
                if rule.applies_to(protocol, server_port, direction)
            ]
            view = CompiledView(applicable, scope=self.scope)
            # Register before memoizing: a replace-invalidation of a stale
            # cache entry pops the memo slot, which must not be the fresh
            # view.  Memo hits stay cache-free (this is the per-packet
            # path); only builds register, so eviction order is build order.
            rulecache.RULE_CACHE.put(
                ("view", self.cache_key[1], key),
                view,
                deps=(self.cache_key, automaton_cache_key(view.automaton.patterns)),
                on_invalidate=self._view_invalidated,
            )
            self._views[key] = view
        return view

    def _view_invalidated(self, key: object, view: object, reason: str) -> None:
        """Dependency-cache cascade: forget the view so it recompiles."""
        self._views.pop(key[2], None)  # type: ignore[index]
