"""Precompiled rule index with combined multi-pattern search.

The naive matcher re-runs ``keyword in buffer`` for every keyword of every
rule on every packet, re-scanning the whole reassembled stream each time.
This module compiles a rule list once into per-(protocol, port, direction)
views, each with a single combined substring scanner over every keyword the
view can match, plus a per-flow incremental-scan watermark so stream bytes
are inspected at most once.

Exact-equivalence contract (verified by the differential tests): for any
rule list, buffer, payload and packet index, :meth:`CompiledView.match`
returns the same rule :meth:`DPIMiddlebox._match_rules` would have picked
with the naive per-rule loop — first match in rule-list order, position
rules only firing on their packet index, STUN rules parsing the buffer.

The combined scanner joins all patterns into one zero-width-lookahead
alternation, ordered longest-first.  Two patterns that occur at the same
text position are necessarily prefix-related, so crediting every prefix of
the captured (longest) alternative recovers exactly the per-pattern
substring semantics — including overlapping and nested occurrences that a
plain alternation would swallow.

The index assumes rules are not mutated after compilation; replacing the
engine's rule *list* is detected and recompiled.
"""

from __future__ import annotations

import re

from repro.middlebox.rules import MatchRule
from repro.traffic.stun import parse_stun_attributes

Buffer = bytes | bytearray | memoryview


class MultiPatternScanner:
    """One-pass search for every occurrence of any pattern in a byte buffer.

    ``scan`` returns the set of pattern indices (into the constructor's
    list) that occur anywhere in ``buffer[start:end]`` — identical to
    running ``pattern in buffer[start:end]`` per pattern, in one pass.
    """

    __slots__ = ("patterns", "max_len", "_regex", "_closure")

    def __init__(self, patterns: list[bytes]) -> None:
        self.patterns = list(patterns)
        self.max_len = max((len(p) for p in self.patterns), default=0)
        # Longest-first: of all patterns matching at one position, the
        # longest captures, and every other one is a prefix of it.
        order = sorted(range(len(self.patterns)), key=lambda i: -len(self.patterns[i]))
        alternation = b"|".join(b"(" + re.escape(self.patterns[i]) + b")" for i in order)
        self._regex = re.compile(b"(?=" + alternation + b")") if self.patterns else None
        self._closure: list[frozenset[int]] = []
        for i in order:
            captured = self.patterns[i]
            self._closure.append(
                frozenset(j for j, p in enumerate(self.patterns) if captured.startswith(p))
            )

    def scan(self, buffer: Buffer, start: int = 0, end: int | None = None) -> set[int]:
        """All pattern indices occurring in ``buffer[start:end]``."""
        found: set[int] = set()
        if self._regex is None:
            return found
        if end is None:
            end = len(buffer)
        closure = self._closure
        for match in self._regex.finditer(buffer, start, end):
            found |= closure[match.lastindex - 1]
        return found


class StreamScan:
    """Per-flow, per-direction incremental scan state.

    ``watermark`` counts stream bytes already fed through the scanner;
    ``seen`` accumulates pattern indices found so far.  Because stream
    buffers only ever grow by appends (and are truncated from the tail by
    the byte limit, never from the head), a pattern occurs in the current
    buffer iff it was seen by some feed — re-scanning the prefix is never
    needed.
    """

    __slots__ = ("watermark", "seen")

    def __init__(self) -> None:
        self.watermark = 0
        self.seen: set[int] = set()

    def feed(self, scanner: MultiPatternScanner, buffer: Buffer) -> set[int]:
        """Scan bytes appended since the last feed; return all patterns seen."""
        end = len(buffer)
        if end > self.watermark:
            # Back up so patterns spanning the append boundary are found;
            # re-hits inside the overlap are deduplicated by the set.
            start = self.watermark - scanner.max_len + 1
            self.seen |= scanner.scan(buffer, start if start > 0 else 0, end)
            self.watermark = end
        return self.seen


class CompiledView:
    """The rules applicable to one (protocol, server port, direction) context."""

    __slots__ = ("rules", "scanner", "special", "keyword_rules", "stateless_rules", "has_stun")

    def __init__(self, rules: list[tuple[int, MatchRule]]) -> None:
        self.rules = rules
        patterns: list[bytes] = []
        pattern_ids: dict[bytes, int] = {}

        def intern_patterns(rule: MatchRule) -> frozenset[int]:
            ids = []
            for keyword in rule.keywords:
                if keyword not in pattern_ids:
                    pattern_ids[keyword] = len(patterns)
                    patterns.append(keyword)
                ids.append(pattern_ids[keyword])
            return frozenset(ids)

        #: rules needing per-call handling in the stateful path (position
        #: and/or STUN) — evaluated directly, they are rare and fire seldom.
        self.special: list[tuple[int, MatchRule]] = []
        #: (order, pattern ids, require_all) — the stream fast path.
        self.keyword_rules: list[tuple[int, frozenset[int], bool]] = []
        #: (order, rule, pattern ids or None) — the stateless path ignores
        #: ``position``, so position keyword rules join the combined scan.
        self.stateless_rules: list[tuple[int, MatchRule, frozenset[int] | None]] = []
        for order, rule in rules:
            if rule.stun_attribute is not None:
                self.special.append((order, rule))
                self.stateless_rules.append((order, rule, None))
                continue
            ids = intern_patterns(rule)
            if rule.position is not None:
                self.special.append((order, rule))
            else:
                self.keyword_rules.append((order, ids, rule.require_all))
            self.stateless_rules.append((order, rule, ids))
        self.scanner = MultiPatternScanner(patterns)
        self.has_stun = any(rule.stun_attribute is not None for _, rule in self.special)

    def match(
        self,
        buffer: Buffer,
        packet_payload: Buffer,
        index: int,
        scan: StreamScan | None,
    ) -> MatchRule | None:
        """First rule (in rule-list order) matching this inspection step.

        *scan* carries the incremental stream state; ``None`` means *buffer*
        is a standalone per-packet payload and is scanned in full.
        """
        best: int | None = None
        stun_attrs: dict[int, bytes] | None | bool = False  # False = not parsed yet
        for order, rule in self.special:
            if best is not None and order > best:
                break
            if rule.position is not None:
                if index == rule.position and rule.matches_buffer(packet_payload):
                    best = order
                continue
            if stun_attrs is False:
                stun_attrs = parse_stun_attributes(buffer)
            if stun_attrs is not None and rule.stun_attribute in stun_attrs:
                best = order

        if self.keyword_rules:
            if scan is None:
                seen = self.scanner.scan(buffer)
            else:
                seen = scan.feed(self.scanner, buffer)
            for order, ids, require_all in self.keyword_rules:
                if best is not None and order > best:
                    break
                if (ids <= seen) if require_all else (ids & seen):
                    best = order
                    break

        if best is None:
            return None
        for order, rule in self.rules:
            if order == best:
                return rule
        raise AssertionError("unreachable: matched order not in view")

    def match_stateless(self, payload: Buffer) -> MatchRule | None:
        """First matching rule ignoring packet position (Iran-style DPI)."""
        seen: set[int] | None = None
        stun_attrs: dict[int, bytes] | None | bool = False
        for _order, rule, ids in self.stateless_rules:
            if ids is None:
                if stun_attrs is False:
                    stun_attrs = parse_stun_attributes(payload)
                if stun_attrs is not None and rule.stun_attribute in stun_attrs:
                    return rule
                continue
            if seen is None:
                seen = self.scanner.scan(payload)
            if (ids <= seen) if rule.require_all else (ids & seen):
                return rule
        return None


class CompiledRuleSet:
    """Lazy per-(protocol, port, direction) views over one rule list."""

    __slots__ = ("rules", "_views")

    def __init__(self, rules: list[MatchRule]) -> None:
        self.rules = tuple(rules)
        self._views: dict[tuple[str, int, str], CompiledView] = {}

    def view(self, protocol: str, server_port: int, direction: str) -> CompiledView:
        key = (protocol, server_port, direction)
        view = self._views.get(key)
        if view is None:
            applicable = [
                (order, rule)
                for order, rule in enumerate(self.rules)
                if rule.applies_to(protocol, server_port, direction)
            ]
            view = CompiledView(applicable)
            self._views[key] = view
        return view
