"""Per-flow classifier state kept by the DPI engine."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.middlebox.ruleindex import StreamScan
from repro.middlebox.rules import MatchRule
from repro.packets.flow import FiveTuple

#: Sentinel verdict: the inspection window was exhausted without a match and
#: the classifier has moved on ("match and forget" of a non-match).
UNCLASSIFIED_FINAL = "unclassified-final"


@dataclass(slots=True)
class FlowState:
    """Everything the classifier remembers about one flow.

    Attributes:
        client_tuple: the five-tuple as seen from the client side (the SYN
            sender, or the first UDP packet's sender).
        created_at / last_packet_time: clock readings for flush timers.
        verdict: None while inspecting, a :class:`MatchRule` after a match,
            or :data:`UNCLASSIFIED_FINAL` once the window closed.
        match_time: when the verdict was reached.
        client_packets / server_packets: payload-carrying packets counted in
            each direction (inspection-window accounting).
        client_buffer / server_buffer: the bytes fed to the matcher so far.
        expected_seq: stream-tracking position for in-order / full modes.
        ooo_segments: out-of-order segments buffered in FULL mode.
        anchor_ok: None before the anchor check, then its boolean result.
        blocked: True once a blocking policy fired for the flow.
        timeout_override: when set, replaces both flush timeouts (the
            testbed shortens its timeout to 10 s after seeing a RST).
        client_scan / server_scan: incremental multi-pattern scan state over
            the corresponding buffer (stream reassembly modes only).
        timer_id / timer_deadline: the flow's pending expiry timer on the
            engine's timer wheel (lazy-rescheduled; None when no constant
            timeout applies to the flow's current category).
    """

    client_tuple: FiveTuple
    protocol: str
    server_port: int
    created_at: float
    last_packet_time: float
    verdict: MatchRule | str | None = None
    match_time: float | None = None
    client_packets: int = 0
    server_packets: int = 0
    client_buffer: bytearray = field(default_factory=bytearray)
    server_buffer: bytearray = field(default_factory=bytearray)
    expected_seq: int | None = None
    ooo_segments: dict[int, bytes] = field(default_factory=dict)
    anchor_ok: bool | None = None
    blocked: bool = False
    timeout_override: float | None = None
    client_scan: StreamScan | None = None
    server_scan: StreamScan | None = None
    timer_id: int | None = None
    timer_deadline: float | None = None

    @property
    def matched_rule(self) -> MatchRule | None:
        """The matched rule, or None for unclassified / window-closed flows."""
        return self.verdict if isinstance(self.verdict, MatchRule) else None

    @property
    def inspection_finished(self) -> bool:
        """True once the classifier will not look at further packets."""
        return self.verdict is not None

    def direction_of(self, src: str, sport: int) -> str:
        """"client" when (src, sport) is the flow's client endpoint else "server"."""
        if src == self.client_tuple.src and sport == self.client_tuple.sport:
            return "client"
        return "server"
