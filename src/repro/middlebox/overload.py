"""Overload policy: deterministic load-shedding for a saturated middlebox.

A middlebox at its flow-table capacity has three bad options: grow without
bound (OOM), drop the packet (break the network), or silently churn state
so fast that verdicts become noise.  The paper's Figure 4 observation —
"classification results being flushed due to scarce resources" — says real
deployments pick the third.  This module makes the degradation *explicit,
ordered, and reproducible*:

1. **Victim preference** — capacity evictions prefer flows whose
   inspection already finished (a verdict is cheap to lose: the flow is
   either throttled via policy marks that survive eviction, or was never
   going to match) over flows still being classified.
2. **Admission shedding** — above a fullness watermark, a deterministic
   per-flow coin decides whether a *new* flow is tracked at all.  Untracked
   flows forward uninspected (fail-open), exactly like mid-flow traffic for
   which no SYN was seen.
3. **Scan-buffer caps** — stream scan buffers are bounded per flow; on
   overflow only the tail window stays scannable (see
   :mod:`repro.middlebox.proxy`).

Every decision derives from ``(seed, flow key)`` via CRC32 — no wall
clock, no ``random`` module state — so serial, thread and process runs
shed the *same* flows and traces stay byte-identical.  Shedding is
observable through ``mbx.shed.*`` metrics, ``mbx.flow_shed`` trace events
and ``mbx.overload`` telemetry-bus transitions, and is **off by default**:
an engine without an :class:`OverloadPolicy` behaves exactly as before.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass

#: Admission-shed decisions scale the CRC32 coin into [0, 1).
_COIN_SPAN = float(1 << 32)


@dataclass(frozen=True)
class OverloadPolicy:
    """Tuning knobs for graceful degradation under flow-table pressure.

    Attributes:
        seed: folded into every per-flow shed coin (decisions are a pure
            function of ``(seed, flow key, fullness band)``).
        shed_start: table fullness (0..1] at which admission shedding
            begins; below it every new flow is tracked.
        shed_max: shed probability once the table is completely full; the
            probability ramps linearly from 0 at ``shed_start``.
        prefer_finished_victims: bias capacity evictions toward flows whose
            inspection already finished (lowest-value state first).
        victim_scan_limit: how far from the LRU end the victim search may
            walk (bounds eviction cost; see
            :data:`repro.middlebox.flowtable.DEFAULT_VICTIM_SCAN_LIMIT`).
        scan_buffer_cap: per-flow scan-buffer byte cap for stream/proxy
            buffers (None = uncapped); on overflow the scanner degrades to
            a tail window of this size.
    """

    seed: int = 0x5EED
    shed_start: float = 0.95
    shed_max: float = 0.5
    prefer_finished_victims: bool = True
    victim_scan_limit: int = 8
    scan_buffer_cap: int | None = None

    def __post_init__(self) -> None:
        if not 0.0 < self.shed_start <= 1.0:
            raise ValueError("shed_start must be in (0, 1]")
        if not 0.0 <= self.shed_max <= 1.0:
            raise ValueError("shed_max must be in [0, 1]")


class LoadShedder:
    """Evaluates one :class:`OverloadPolicy` against live table fullness.

    Stateless apart from counters: the shed decision for a flow depends
    only on the policy seed, the flow key and the instantaneous fullness,
    which keeps worker processes in agreement without any shared state.
    """

    __slots__ = ("policy", "admitted", "shed", "overloaded")

    def __init__(self, policy: OverloadPolicy) -> None:
        self.policy = policy
        self.admitted = 0
        self.shed = 0
        self.overloaded = False  # above shed_start, for bus transitions

    def coin(self, key: object) -> float:
        """A deterministic per-flow value in [0, 1)."""
        digest = zlib.crc32(f"{self.policy.seed}|{key!r}".encode("utf-8", "replace"))
        return digest / _COIN_SPAN

    def shed_probability(self, fullness: float) -> float:
        """The admission-shed probability at *fullness* (0..1 of capacity)."""
        start = self.policy.shed_start
        if fullness < start:
            return 0.0
        if start >= 1.0:
            return self.policy.shed_max if fullness >= 1.0 else 0.0
        ramp = min(1.0, (fullness - start) / (1.0 - start))
        return self.policy.shed_max * ramp

    def admit(self, key: object, fullness: float) -> bool:
        """Decide whether a new flow at *fullness* is tracked (True) or shed."""
        probability = self.shed_probability(fullness)
        if probability > 0.0 and self.coin(key) < probability:
            self.shed += 1
            return False
        self.admitted += 1
        return True

    def crossed(self, fullness: float) -> str | None:
        """Track the overload watermark; "enter"/"exit" on a transition."""
        above = fullness >= self.policy.shed_start
        if above and not self.overloaded:
            self.overloaded = True
            return "enter"
        if not above and self.overloaded:
            self.overloaded = False
            return "exit"
        return None

    def stats(self) -> dict[str, int]:
        return {"admitted": self.admitted, "shed": self.shed}
