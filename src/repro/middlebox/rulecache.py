"""Dependency-aware cache for compiled rule artifacts (HQTimer-style).

The compile pipeline builds three kinds of interned artifacts, each layered
on the one below::

    rule list ──compile──▶ CompiledRuleSet ──view──▶ CompiledView
    patterns  ──build────▶ PatternAutomaton ──────────▶ (used by views)

Historically each layer kept its own ad-hoc bounded dict
(``CompiledRuleSet._shared``, ``automaton._INTERNED``), evicting oldest
first with no notion of the layering: evicting an automaton left views
holding it alive but unreachable for sharing, and evicting a rule set left
its views stranded in the per-set memo.

:class:`DependencyCache` centralizes this with *dependency sets* in the
style of HQTimer's rule caching: every entry records the entries it was
derived from, and invalidating (evicting, expiring, or explicitly dropping)
an entry cascades to its dependents in deterministic insertion order —
evicting a rule set drops its views; evicting an automaton drops every view
compiled over it.  Each entry may carry an ``on_invalidate`` callback that
unhooks it from whatever layer-local memo serves the hot path (the hot
path itself never pays a cache lookup — views stay memoized on their rule
set; the cache governs *lifetime*, not access).

Idle timeouts are explicit: :meth:`tick` expires entries untouched for
longer than their TTL.  Nothing calls it implicitly — virtual clocks are
per-experiment, so TTL-driven expiry is driven by whoever owns the clock
(the scale workload, tests) and is deterministic.

Storage, LRU ordering and capacity bounds reuse
:class:`~repro.middlebox.flowtable.FlowTable` — one slab/LRU
implementation for flows and rule programs alike.

``mbx.rulecache.*`` metrics are compile-path facts: like
``mbx.automaton.*`` they are per-process and memoization-dependent, and are
excluded from the cross-process snapshot identity contract (see
``tests/test_obs_live.py``).
"""

from __future__ import annotations

from typing import Callable, Hashable

from repro.middlebox.flowtable import FlowTable
from repro.obs import metrics as obs_metrics

Key = Hashable

#: Default bound on cached artifacts across all layers; generous enough
#: that the full Table 3 matrix (every environment's rule sets, views and
#: automata) fits without a single eviction.
DEFAULT_CAPACITY = 4096


class CacheEntry:
    """One cached artifact plus its place in the dependency graph."""

    __slots__ = ("key", "value", "deps", "dependents", "ttl", "last_touch", "on_invalidate")

    def __init__(
        self,
        key: Key,
        value: object,
        deps: tuple[Key, ...],
        ttl: float | None,
        on_invalidate: Callable[[Key, object, str], None] | None,
    ) -> None:
        self.key = key
        self.value = value
        self.deps = deps
        #: dependent keys in registration order (dict-as-ordered-set).
        self.dependents: dict[Key, None] = {}
        self.ttl = ttl
        self.last_touch = 0.0
        self.on_invalidate = on_invalidate


class DependencyCache:
    """A bounded LRU cache whose invalidations cascade along dependencies."""

    def __init__(
        self,
        capacity: int | None = DEFAULT_CAPACITY,
        ttl: float | None = None,
        name: str = "rulecache",
    ) -> None:
        self.capacity = capacity
        self.ttl = ttl
        self.name = name
        self._store: FlowTable[Key, CacheEntry] = FlowTable(
            capacity=capacity, on_evict=self._store_evicted
        )
        self.invalidations = 0
        self.expirations = 0

    # ------------------------------------------------------------------
    # core API
    # ------------------------------------------------------------------
    def get(self, key: Key, now: float | None = None, touch: bool = True) -> object | None:
        """The cached value for *key*, touching LRU and TTL recency."""
        entry = self._store.get(key, touch=touch)
        metrics = obs_metrics.METRICS
        if entry is None:
            if metrics is not None:
                metrics.inc(f"mbx.{self.name}.misses")
            return None
        if metrics is not None:
            metrics.inc(f"mbx.{self.name}.hits")
        if touch and now is not None:
            entry.last_touch = now
        return entry.value

    def touch(self, key: Key, now: float | None = None) -> bool:
        """Refresh *key*'s LRU position (and TTL recency) without counters.

        The compile layers keep their own O(1) memo dicts for lookup and
        call this on memo hits so cache eviction order tracks real use.
        """
        entry = self._store.get(key, touch=True)
        if entry is None:
            return False
        if now is not None:
            entry.last_touch = now
        return True

    def put(
        self,
        key: Key,
        value: object,
        deps: tuple[Key, ...] = (),
        ttl: float | None = None,
        now: float | None = None,
        on_invalidate: Callable[[Key, object, str], None] | None = None,
    ) -> object:
        """Cache *value* under *key*, derived from *deps*; returns *value*.

        Missing dependency keys are tolerated (the parent may itself have
        been evicted already); present ones record the dependent edge.
        """
        existing = self._store.get(key, touch=False)
        if existing is not None:
            self.invalidate(key, reason="replaced")
        entry = CacheEntry(key, value, tuple(deps), ttl if ttl is not None else self.ttl, on_invalidate)
        if now is not None:
            entry.last_touch = now
        for dep in entry.deps:
            parent = self._store.get(dep, touch=False)
            if parent is not None:
                parent.dependents[key] = None
        self._store.insert(key, entry)
        return value

    def invalidate(self, key: Key, reason: str = "invalidated") -> list[Key]:
        """Drop *key* and every transitive dependent; returns dropped keys.

        Cascade order is deterministic: breadth-first over dependent sets
        in their registration order.
        """
        dropped: list[Key] = []
        queue: list[tuple[Key, str]] = [(key, reason)]
        while queue:
            current, why = queue.pop(0)
            entry = self._store.pop(current)
            if entry is None:
                continue
            dropped.append(current)
            self.invalidations += 1
            if obs_metrics.METRICS is not None:
                obs_metrics.METRICS.inc(f"mbx.{self.name}.invalidations")
            for dependent in entry.dependents:
                queue.append((dependent, f"dependency:{why}"))
            if entry.on_invalidate is not None:
                entry.on_invalidate(current, entry.value, why)
        return dropped

    def tick(self, now: float) -> list[Key]:
        """Expire entries idle past their TTL, cascading to dependents.

        Expiry examines entries in insertion order and is driven explicitly
        by whoever owns the experiment clock.
        """
        stale = [
            key
            for key, entry in self._store.items()
            if entry.ttl is not None and now - entry.last_touch > entry.ttl
        ]
        dropped: list[Key] = []
        for key in stale:
            if key in self._store:  # may already be gone via a cascade
                self.expirations += 1
                dropped.extend(self.invalidate(key, reason="expired"))
        return dropped

    # ------------------------------------------------------------------
    # plumbing
    # ------------------------------------------------------------------
    def _store_evicted(self, key: Key, entry: CacheEntry, reason: str) -> None:
        """Capacity eviction from the slab: cascade to dependents."""
        self.invalidations += 1
        if obs_metrics.METRICS is not None:
            obs_metrics.METRICS.inc(f"mbx.{self.name}.invalidations")
        if entry.on_invalidate is not None:
            entry.on_invalidate(key, entry.value, reason)
        for dependent in list(entry.dependents):
            self.invalidate(dependent, reason=f"dependency:{reason}")

    def __contains__(self, key: Key) -> bool:
        return key in self._store

    def __len__(self) -> int:
        return len(self._store)

    def clear(self) -> None:
        """Drop everything, unhooking each entry from its layer memo."""
        entries = list(self._store.items())
        self._store.clear()
        for key, entry in entries:
            if entry.on_invalidate is not None:
                entry.on_invalidate(key, entry.value, "cleared")

    def stats(self) -> dict[str, int]:
        stats = self._store.stats()
        stats["invalidations"] = self.invalidations
        stats["expirations"] = self.expirations
        return stats


#: The process-wide cache every compile layer registers into.
RULE_CACHE = DependencyCache()
