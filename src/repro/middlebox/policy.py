"""Policy actions a classifier rule can apply to a matched flow."""

from __future__ import annotations

import enum
from dataclasses import dataclass


class PolicyAction(enum.Enum):
    """What happens to a flow once a rule matches it."""

    NONE = "none"  # classify only (visible in the testbed readout)
    THROTTLE = "throttle"  # token-bucket shaping at a configured rate
    ZERO_RATE = "zero-rate"  # exempt from the data quota (Binge On)
    BLOCK_RST = "block-rst"  # inject RSTs toward both endpoints (GFC style)
    BLOCK_PAGE = "block-page"  # inject an HTTP 403 plus RSTs (Iran style)


@dataclass(frozen=True)
class BlockBehavior:
    """How a blocking middlebox disrupts a matched flow.

    Attributes:
        rsts_to_client: number of RSTs spoofed toward the client (the GFC
            sent 3-5; Iran sent 2).
        rsts_to_server: number of RSTs spoofed toward the server.
        block_page: optional payload injected toward the client before the
            RSTs (Iran's "HTTP/1.1 403 Forbidden").
        drop_matched_flow: when True, subsequent client packets of the
            blocked flow are dropped instead of forwarded.
    """

    rsts_to_client: int = 3
    rsts_to_server: int = 1
    block_page: bytes | None = None
    drop_matched_flow: bool = False


IRAN_BLOCK_PAGE = (
    b"HTTP/1.1 403 Forbidden\r\nContent-Type: text/html\r\nContent-Length: 20\r\n\r\n"
    b"<html>blocked</html>"
)


@dataclass(frozen=True)
class RulePolicy:
    """The concrete policy attached to a rule.

    Attributes:
        action: the policy class.
        throttle_rate_bps: shaping rate for THROTTLE.
        block: blocking details for BLOCK_RST / BLOCK_PAGE.
    """

    action: PolicyAction = PolicyAction.NONE
    throttle_rate_bps: float = 1_500_000.0
    block: BlockBehavior = BlockBehavior()
    also_throttle: bool = False  # zero-rated video is *also* shaped (Binge On)

    @classmethod
    def throttle(cls, rate_bps: float) -> "RulePolicy":
        """A shaping policy at *rate_bps*."""
        return cls(action=PolicyAction.THROTTLE, throttle_rate_bps=rate_bps)

    @classmethod
    def zero_rate(cls, throttle_rate_bps: float | None = None) -> "RulePolicy":
        """A zero-rating policy, optionally with Binge On-style shaping."""
        if throttle_rate_bps is not None:
            return cls(
                action=PolicyAction.ZERO_RATE,
                throttle_rate_bps=throttle_rate_bps,
                also_throttle=True,
            )
        return cls(action=PolicyAction.ZERO_RATE)

    @classmethod
    def block_with_rsts(cls, to_client: int = 3, to_server: int = 1) -> "RulePolicy":
        """A GFC-style RST-injection policy."""
        return cls(
            action=PolicyAction.BLOCK_RST,
            block=BlockBehavior(rsts_to_client=to_client, rsts_to_server=to_server),
        )

    @classmethod
    def block_with_page(cls, page: bytes = IRAN_BLOCK_PAGE) -> "RulePolicy":
        """An Iran-style block-page + RST policy."""
        return cls(
            action=PolicyAction.BLOCK_PAGE,
            block=BlockBehavior(rsts_to_client=2, rsts_to_server=1, block_page=page),
        )
