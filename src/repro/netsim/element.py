"""The network-element interface every hop, filter, shaper and middlebox implements."""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

from repro.netsim.clock import VirtualClock
from repro.packets.flow import Direction
from repro.packets.ip import IPPacket

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (scheduler → path)
    from repro.netsim.scheduler import EventScheduler


@dataclass
class TransitContext:
    """Per-delivery context handed to each element.

    Attributes:
        clock: the shared virtual clock.
        inject_back: call to send a packet back toward where the current
            packet came from (e.g. an ICMP Time Exceeded, or a censor RST
            toward the client).
        inject_forward: call to send an extra packet onward toward the
            current packet's destination (e.g. a censor RST toward the
            server).
        scheduler: the path's event scheduler, or None in direct-call mode.
            Elements may arm timers on it (fragment-reassembly expiry);
            they must re-check their condition when the timer fires, since
            the per-packet scan may have beaten them to it.
    """

    clock: VirtualClock
    inject_back: Callable[[IPPacket], None]
    inject_forward: Callable[[IPPacket], None]
    scheduler: "EventScheduler | None" = None


class NetworkElement(ABC):
    """One processing stage on the path between the endpoints.

    Elements receive every packet in both directions.  They may forward the
    packet (possibly transformed), drop it (return an empty list), expand it
    (fragment reassembly returning the whole datagram), or inject extra
    packets via the context.
    """

    name: str = "element"

    @abstractmethod
    def process(
        self, packet: IPPacket, direction: Direction, ctx: TransitContext
    ) -> list[IPPacket]:
        """Handle *packet* traveling in *direction*; return packets to forward."""

    def reset(self) -> None:
        """Clear any per-flow state (called between independent replays)."""


@dataclass(slots=True)
class PacketRecord:
    """A packet observation with its timestamp and direction."""

    time: float
    direction: Direction
    packet: IPPacket


class PacketTap(NetworkElement):
    """A passive element that records everything it sees — used for diagnostics."""

    def __init__(self, name: str = "tap") -> None:
        self.name = name
        self.records: list[PacketRecord] = []

    def process(
        self, packet: IPPacket, direction: Direction, ctx: TransitContext
    ) -> list[IPPacket]:
        """Record and forward the packet unchanged."""
        self.records.append(PacketRecord(time=ctx.clock.now, direction=direction, packet=packet))
        return [packet]

    def reset(self) -> None:
        """Drop all recorded packets."""
        self.records.clear()
