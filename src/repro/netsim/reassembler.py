"""In-network IP fragment reassembly.

In the testbed, T-Mobile and the GFC, fragments we sent were reassembled
before they reached the server (Table 3 footnote 2).  This element performs
that reassembly at whatever point of the path the environment places it —
always *after* the classifier, since the testbed classifier demonstrably saw
the individual fragments.
"""

from __future__ import annotations

from repro.netsim.element import NetworkElement, TransitContext
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.packets.flow import Direction
from repro.packets.fragment import reassemble_fragments
from repro.packets.ip import IPPacket

ReassemblyKey = tuple[str, str, int, int]


class FragmentReassembler(NetworkElement):
    """Buffers fragments and forwards only complete, reassembled datagrams.

    Args:
        timeout: seconds of virtual time after which an incomplete fragment
            set is discarded (as a real reassembler would, lest lost
            fragments pin memory forever).  ``None`` (the default) buffers
            indefinitely — the historical fault-free behaviour.
    """

    name = "frag-reassembler"

    def __init__(self, timeout: float | None = None) -> None:
        self.timeout = timeout
        self._pending: dict[ReassemblyKey, list[IPPacket]] = {}
        self._first_seen: dict[ReassemblyKey, float] = {}
        self.reassembled_count = 0
        self.expired_count = 0

    def process(
        self, packet: IPPacket, direction: Direction, ctx: TransitContext
    ) -> list[IPPacket]:
        """Hold fragments until their datagram is complete, pass the rest through."""
        if self.timeout is not None:
            self._expire_stale(ctx.clock.now)
        if not packet.is_fragment:
            return [packet]
        key: ReassemblyKey = (
            packet.src,
            packet.dst,
            packet.identification,
            packet.effective_protocol,
        )
        bucket = self._pending.setdefault(key, [])
        if key not in self._first_seen:
            self._first_seen[key] = ctx.clock.now
        bucket.append(packet)
        whole = reassemble_fragments(bucket)
        if whole is None:
            if obs_trace.TRACER is not None:
                obs_trace.TRACER.emit(
                    "frag.hold",
                    ctx.clock.now,
                    element=self.name,
                    pending=len(bucket),
                    **obs_trace.packet_fields(packet),
                )
            return []
        del self._pending[key]
        self._first_seen.pop(key, None)
        self.reassembled_count += 1
        if obs_trace.TRACER is not None:
            obs_trace.TRACER.emit(
                "frag.reassembled",
                ctx.clock.now,
                element=self.name,
                fragments=len(bucket),
                **obs_trace.packet_fields(whole),
            )
        if obs_metrics.METRICS is not None:
            obs_metrics.METRICS.inc("netsim.frags.reassembled")
        return [whole]

    def _expire_stale(self, now: float) -> None:
        stale = [
            key
            for key, first in self._first_seen.items()
            if now - first > self.timeout
        ]
        for key in stale:
            pending = self._pending.pop(key, None)
            del self._first_seen[key]
            self.expired_count += 1
            if obs_trace.TRACER is not None:
                obs_trace.TRACER.emit(
                    "frag.expired",
                    now,
                    element=self.name,
                    reason="timeout",
                    fragments=len(pending) if pending else 0,
                    src=key[0],
                    dst=key[1],
                    ident=key[2],
                )
            if obs_metrics.METRICS is not None:
                obs_metrics.METRICS.inc("netsim.frags.expired")

    def reset(self) -> None:
        """Drop buffered fragments."""
        self._pending.clear()
        self._first_seen.clear()
        self.reassembled_count = 0
