"""In-network IP fragment reassembly.

In the testbed, T-Mobile and the GFC, fragments we sent were reassembled
before they reached the server (Table 3 footnote 2).  This element performs
that reassembly at whatever point of the path the environment places it —
always *after* the classifier, since the testbed classifier demonstrably saw
the individual fragments.
"""

from __future__ import annotations

from repro.netsim.element import NetworkElement, TransitContext
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.packets.flow import Direction
from repro.packets.fragment import reassemble_fragments
from repro.packets.ip import IPPacket

ReassemblyKey = tuple[str, str, int, int]


class FragmentReassembler(NetworkElement):
    """Buffers fragments and forwards only complete, reassembled datagrams.

    Args:
        timeout: seconds of virtual time after which an incomplete fragment
            set is discarded (as a real reassembler would, lest lost
            fragments pin memory forever).  ``None`` (the default) buffers
            indefinitely — the historical fault-free behaviour.
    """

    name = "frag-reassembler"

    def __init__(self, timeout: float | None = None) -> None:
        self.timeout = timeout
        self._pending: dict[ReassemblyKey, list[IPPacket]] = {}
        self._first_seen: dict[ReassemblyKey, float] = {}
        #: key -> (scheduler, event_id) for natively armed expiry timers
        #: (only populated when the path's scheduler has ``arm_timeouts``).
        self._timers: dict[ReassemblyKey, tuple[object, int]] = {}
        self.reassembled_count = 0
        self.expired_count = 0

    def process(
        self, packet: IPPacket, direction: Direction, ctx: TransitContext
    ) -> list[IPPacket]:
        """Hold fragments until their datagram is complete, pass the rest through."""
        if self.timeout is not None:
            self._expire_stale(ctx.clock.now)
        if not packet.is_fragment:
            return [packet]
        key: ReassemblyKey = (
            packet.src,
            packet.dst,
            packet.identification,
            packet.effective_protocol,
        )
        bucket = self._pending.setdefault(key, [])
        if key not in self._first_seen:
            self._first_seen[key] = ctx.clock.now
            self._arm_expiry(key, ctx)
        bucket.append(packet)
        whole = reassemble_fragments(bucket)
        if whole is None:
            if obs_trace.TRACER is not None:
                obs_trace.TRACER.emit(
                    "frag.hold",
                    ctx.clock.now,
                    element=self.name,
                    pending=len(bucket),
                    **obs_trace.packet_fields(packet),
                )
            return []
        del self._pending[key]
        self._first_seen.pop(key, None)
        self._disarm(key)
        self.reassembled_count += 1
        if obs_trace.TRACER is not None:
            obs_trace.TRACER.emit(
                "frag.reassembled",
                ctx.clock.now,
                element=self.name,
                fragments=len(bucket),
                **obs_trace.packet_fields(whole),
            )
        if obs_metrics.METRICS is not None:
            obs_metrics.METRICS.inc("netsim.frags.reassembled")
        return [whole]

    def _expire_stale(self, now: float) -> None:
        stale = [
            key
            for key, first in self._first_seen.items()
            if now - first > self.timeout
        ]
        for key in stale:
            self._drop_expired(key, now)

    def _drop_expired(self, key: ReassemblyKey, now: float) -> None:
        pending = self._pending.pop(key, None)
        self._first_seen.pop(key, None)
        self._disarm(key)
        self.expired_count += 1
        if obs_trace.TRACER is not None:
            obs_trace.TRACER.emit(
                "frag.expired",
                now,
                element=self.name,
                reason="timeout",
                fragments=len(pending) if pending else 0,
                src=key[0],
                dst=key[1],
                ident=key[2],
            )
        if obs_metrics.METRICS is not None:
            obs_metrics.METRICS.inc("netsim.frags.expired")

    # ------------------------------------------------------------------
    # native (scheduler-armed) expiry — event-core deferred mode only
    # ------------------------------------------------------------------
    def _arm_expiry(self, key: ReassemblyKey, ctx: TransitContext) -> None:
        """Arm a scheduler timer for *key*'s expiry deadline.

        Only when the bound scheduler opts in via ``arm_timeouts`` — in
        thin-driver (synchronous) mode the per-packet scan is authoritative
        and arming would change the trace stream.  The callback re-checks
        the pending state: the scan may have expired (strictly-late) or a
        completing fragment may have consumed the datagram first.
        """
        scheduler = getattr(ctx, "scheduler", None)
        if self.timeout is None or scheduler is None or not getattr(scheduler, "arm_timeouts", False):
            return
        deadline = self._first_seen[key] + self.timeout
        event_id = scheduler.at(deadline, self._on_expiry_timer, key, deadline)
        self._timers[key] = (scheduler, event_id)

    def _on_expiry_timer(self, key: ReassemblyKey, deadline: float) -> None:
        self._timers.pop(key, None)
        first = self._first_seen.get(key)
        if first is None or self.timeout is None:
            return  # completed (or reset) before the deadline
        # The timer fires exactly at first + timeout; the native deadline is
        # inclusive (the scan's strict ``>`` would wait for the next packet,
        # which in deferred mode may never come).
        if deadline - first >= self.timeout:
            self._drop_expired(key, deadline)

    def _disarm(self, key: ReassemblyKey) -> None:
        timer = self._timers.pop(key, None)
        if timer is not None:
            scheduler, event_id = timer
            scheduler.cancel(event_id)  # type: ignore[attr-defined]

    def reset(self) -> None:
        """Drop buffered fragments."""
        for scheduler, event_id in self._timers.values():
            scheduler.cancel(event_id)  # type: ignore[attr-defined]
        self._timers.clear()
        self._pending.clear()
        self._first_seen.clear()
        self.reassembled_count = 0
