"""In-network IP fragment reassembly.

In the testbed, T-Mobile and the GFC, fragments we sent were reassembled
before they reached the server (Table 3 footnote 2).  This element performs
that reassembly at whatever point of the path the environment places it —
always *after* the classifier, since the testbed classifier demonstrably saw
the individual fragments.
"""

from __future__ import annotations

from repro.netsim.element import NetworkElement, TransitContext
from repro.packets.flow import Direction
from repro.packets.fragment import reassemble_fragments
from repro.packets.ip import IPPacket

ReassemblyKey = tuple[str, str, int, int]


class FragmentReassembler(NetworkElement):
    """Buffers fragments and forwards only complete, reassembled datagrams."""

    name = "frag-reassembler"

    def __init__(self) -> None:
        self._pending: dict[ReassemblyKey, list[IPPacket]] = {}
        self.reassembled_count = 0

    def process(
        self, packet: IPPacket, direction: Direction, ctx: TransitContext
    ) -> list[IPPacket]:
        """Hold fragments until their datagram is complete, pass the rest through."""
        if not packet.is_fragment:
            return [packet]
        key: ReassemblyKey = (
            packet.src,
            packet.dst,
            packet.identification,
            packet.effective_protocol,
        )
        bucket = self._pending.setdefault(key, [])
        bucket.append(packet)
        whole = reassemble_fragments(bucket)
        if whole is None:
            return []
        del self._pending[key]
        self.reassembled_count += 1
        return [whole]

    def reset(self) -> None:
        """Drop buffered fragments."""
        self._pending.clear()
        self.reassembled_count = 0
