"""In-network filtering of malformed packets.

The paper found that "many of the inert packets that worked in our testbed
were dropped in every operational network we tested … likely due to routers
and/or firewalls that drop malformed packets" (§7).  Each operational
environment configures a :class:`FilterPolicy` describing exactly which
anomalies its path drops; the filter element applies it.

The GFC path additionally rewrote bad TCP checksums before they reached our
server (Table 3, footnote 4) — :class:`TCPChecksumNormalizer` models that.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.netsim.element import NetworkElement, TransitContext
from repro.packets.flow import Direction, FiveTuple
from repro.packets.ip import IPPacket
from repro.packets.tcp import TCPFlags, TCPSegment
from repro.packets.udp import UDPDatagram

#: Sequence numbers further than this from the expected value count as
#: "wildly out of window" for stateful firewalls.
SEQ_WINDOW = 1 << 20


@dataclass
class FilterPolicy:
    """Which malformed packets an in-network filter drops.

    Every flag defaults to False (pass everything), matching the testbed's
    permissive path; environment factories switch on what their network was
    observed to drop.
    """

    drop_bad_ip_header: bool = False  # invalid version / IHL / total length / IP checksum
    drop_invalid_ip_options: bool = False
    drop_deprecated_ip_options: bool = False
    drop_any_ip_options: bool = False
    drop_unknown_protocol: bool = False
    drop_ip_fragments: bool = False
    drop_bad_tcp_checksum: bool = False
    drop_out_of_window_seq: bool = False
    drop_missing_ack_flag: bool = False
    drop_bad_data_offset: bool = False
    drop_invalid_flag_combo: bool = False
    drop_bad_udp_checksum: bool = False
    drop_bad_udp_length: bool = False

    @classmethod
    def permissive(cls) -> "FilterPolicy":
        """A policy that drops nothing."""
        return cls()

    @classmethod
    def strict_carrier(cls) -> "FilterPolicy":
        """Everything-validating cellular carrier profile (observed for TMUS)."""
        return cls(
            drop_bad_ip_header=True,
            drop_invalid_ip_options=True,
            drop_deprecated_ip_options=True,
            drop_ip_fragments=False,
            drop_bad_tcp_checksum=True,
            drop_out_of_window_seq=True,
            drop_missing_ack_flag=True,
            drop_bad_data_offset=True,
            drop_invalid_flag_combo=True,
            drop_bad_udp_checksum=True,
            drop_bad_udp_length=True,
        )


class MalformedPacketFilter(NetworkElement):
    """Drops packets according to a :class:`FilterPolicy`.

    Keeps lightweight per-flow TCP state (expected next sequence number,
    learned from handshakes and forwarded data) so the *out-of-window
    sequence* check can be enforced the way stateful carrier firewalls do.
    """

    def __init__(self, policy: FilterPolicy, name: str = "filter") -> None:
        self.policy = policy
        self.name = name
        self.dropped: list[IPPacket] = []
        self._next_seq: dict[FiveTuple, int] = {}

    def process(
        self, packet: IPPacket, direction: Direction, ctx: TransitContext
    ) -> list[IPPacket]:
        """Apply the policy; forward, or record and drop."""
        if self._should_drop(packet):
            self.dropped.append(packet)
            return []
        if self.policy.drop_out_of_window_seq:
            # Sequence state is only consulted by the out-of-window check.
            self._track(packet)
        return [packet]

    def _should_drop(self, packet: IPPacket) -> bool:
        policy = self.policy
        if (
            policy.drop_bad_ip_header
            # Pristine fast path: auto-computed IHL/length/checksum are
            # self-consistent by construction, so only crafted overrides
            # need the full predicate walk.
            and (
                packet.version != 4
                or packet.ihl is not None
                or packet.total_length is not None
                or packet.checksum is not None
            )
            and not (
                packet.has_valid_version()
                and packet.has_valid_ihl()
                and packet.has_valid_total_length()
                and packet.has_valid_checksum()
            )
        ):
            return True
        if packet.options:
            if policy.drop_any_ip_options:
                return True
            if policy.drop_invalid_ip_options and not packet.has_wellformed_options():
                return True
            if policy.drop_deprecated_ip_options and packet.has_deprecated_options():
                return True
        if policy.drop_unknown_protocol and not packet.has_known_protocol():
            return True
        if policy.drop_ip_fragments and packet.is_fragment:
            return True
        # Direct transport access: the tcp/udp properties cost a descriptor
        # call each, and this runs for every packet on strict-carrier paths.
        transport = packet.transport
        declared = packet.protocol
        tcp = transport if type(transport) is TCPSegment else None
        if tcp is not None and (declared is None or declared == 6):
            if policy.drop_bad_tcp_checksum and not tcp.verify_checksum(packet.src, packet.dst):
                return True
            if policy.drop_bad_data_offset and not tcp.has_valid_data_offset():
                return True
            if policy.drop_invalid_flag_combo and not tcp.flags.is_valid_combination():
                return True
            if policy.drop_missing_ack_flag and self._missing_ack(packet, tcp):
                return True
            if policy.drop_out_of_window_seq and self._out_of_window(packet, tcp):
                return True
        udp = transport if type(transport) is UDPDatagram else None
        if udp is not None and (declared is None or declared == 17):
            if policy.drop_bad_udp_checksum and not udp.verify_checksum(packet.src, packet.dst):
                return True
            if policy.drop_bad_udp_length and not udp.has_valid_length():
                return True
        return False

    def _missing_ack(self, packet: IPPacket, tcp: TCPSegment) -> bool:
        # The initial SYN legitimately has no ACK; RST-only is also normal.
        flags = int(tcp.flags)
        if flags & 0x06:  # SYN or RST
            return False
        return not flags & 0x10  # ACK

    def _out_of_window(self, packet: IPPacket, tcp: TCPSegment) -> bool:
        key = FiveTuple.of(packet)
        if key is None:
            return False
        expected = self._next_seq.get(key)
        if expected is None:
            return False
        distance = (tcp.seq - expected) & 0xFFFFFFFF
        reverse_distance = (expected - tcp.seq) & 0xFFFFFFFF
        return min(distance, reverse_distance) > SEQ_WINDOW

    def _track(self, packet: IPPacket) -> None:
        tcp = packet.tcp
        key = FiveTuple.of(packet)
        if tcp is None or key is None:
            return
        advance = len(tcp.payload)
        if int(tcp.flags) & 0x03:  # SYN or FIN each consume one sequence number
            advance += 1
        self._next_seq[key] = (tcp.seq + advance) & 0xFFFFFFFF

    def reset(self) -> None:
        """Forget drops and flow state."""
        self.dropped.clear()
        self._next_seq.clear()


class TCPChecksumNormalizer(NetworkElement):
    """Rewrites incorrect TCP checksums to the correct value.

    Models the NAT-like device on the GFC path that corrected our corrupted
    checksums before the packets arrived at the server (Table 3 footnote 4).
    """

    name = "checksum-normalizer"

    def __init__(self) -> None:
        self.normalized_count = 0

    def process(
        self, packet: IPPacket, direction: Direction, ctx: TransitContext
    ) -> list[IPPacket]:
        """Fix the TCP checksum in place when it is wrong; always forward."""
        tcp = packet.tcp
        if tcp is not None and not tcp.verify_checksum(packet.src, packet.dst):
            self.normalized_count += 1
            fixed = packet.copy()
            assert fixed.tcp is not None
            fixed.tcp.checksum = None  # recompute on serialization
            return [fixed]
        return [packet]

    def reset(self) -> None:
        """Reset the normalization counter."""
        self.normalized_count = 0
