"""Deterministic event scheduler — the netsim's event-driven core.

Historically the simulator advanced per packet through nested function
calls: ``Path.send_from_client`` walked every element synchronously, and a
second flow could only begin once the first one's whole frame (including
injected responses) had unwound.  That shape cannot express thousands of
interleaved flows — the regime the bounded flow tables were built for — nor
congestion scenarios where flow B's packets land *between* flow A's.

:class:`EventScheduler` is the replacement substrate: a priority queue of
``(deadline, seq)``-keyed events over the existing
:class:`~repro.netsim.clock.VirtualClock`.  Work is *posted* as events and
*consumed* in virtual-time order; the per-packet synchronous API survives as
a thin driver that posts a frame event and drains it immediately, which the
differential suite holds byte-identical to the legacy nested-call driver.

Determinism contract (the differential and property suites pin all of it):

* Events fire in ``(deadline, seq)`` order — wall-deadline order with FIFO
  tie-breaking on the schedule sequence, independent of heap internals.
* The clock never runs backwards: firing an event whose deadline has
  already passed (scheduled "in the past" by a lazy re-arm) runs it at the
  current time without rewinding.
* **Zero-delay events fire in the same drain.**  An event posted at the
  current time — including from inside another event's handler — is
  consumed by the drain already in progress, not parked for a future
  advance.  This mirrors the fix for ``VirtualClock.advance(0)``: a zero
  advance still drains everything due *now* instead of treating it as
  overdue-next-tick.
* Cancellation is O(log n) lazy: the heap entry is tombstoned and skipped
  when popped, the same idiom the timer wheel uses.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable

from repro.netsim.clock import VirtualClock
from repro.obs import trace as obs_trace

__all__ = ["EventScheduler", "use_event_core", "event_core_enabled"]


class EventScheduler:
    """A deterministic ``(deadline, seq)`` event queue over a virtual clock.

    Args:
        clock: the shared virtual clock; firing an event advances it to the
            event's deadline (monotonically).
        trace_events: when True, every *deferred* firing (deadline strictly
            after the post time) emits a ``scheduler.fire`` trace event.
            Off by default so the synchronous driver stays byte-identical
            to the legacy nested-call driver.
    """

    __slots__ = (
        "clock",
        "trace_events",
        "arm_timeouts",
        "_heap",
        "_live",
        "_next_id",
        "_next_seq",
        "scheduled",
        "fired",
        "cancelled",
        "max_pending",
        "_draining",
    )

    def __init__(
        self,
        clock: VirtualClock,
        trace_events: bool = False,
        arm_timeouts: bool = False,
    ) -> None:
        self.clock = clock
        self.trace_events = trace_events
        #: When True, stateful elements (fragment reassembly) arm native
        #: expiry timers on this scheduler instead of relying solely on
        #: their per-packet scans.  Off in thin-driver mode so the trace
        #: stream stays byte-identical to the nested-call driver.
        self.arm_timeouts = arm_timeouts
        #: heap entries: (deadline, seq, event_id)
        self._heap: list[tuple[float, int, int]] = []
        #: event_id -> (fn, args, deadline, posted_at); cancelled ids are
        #: removed here and lazily skipped when popped from the heap.
        self._live: dict[int, tuple[Callable[..., Any], tuple, float, float]] = {}
        self._next_id = 0
        self._next_seq = 0
        self.scheduled = 0
        self.fired = 0
        self.cancelled = 0
        self.max_pending = 0
        self._draining = False

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """The scheduler's current virtual time (the clock's)."""
        return self.clock.now

    def __len__(self) -> int:
        return len(self._live)

    @property
    def pending(self) -> int:
        """Number of events scheduled and not yet fired or cancelled."""
        return len(self._live)

    def next_deadline(self) -> float | None:
        """Deadline of the earliest pending event (None when idle)."""
        while self._heap and self._heap[0][2] not in self._live:
            heapq.heappop(self._heap)  # tombstoned (cancelled)
        return self._heap[0][0] if self._heap else None

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def at(self, deadline: float, fn: Callable[..., Any], *args: Any) -> int:
        """Register ``fn(*args)`` to run once the drain reaches *deadline*.

        A deadline at or before the current time means "as soon as
        possible": the event keeps its requested deadline for ordering but
        fires within the drain in progress (zero-delay semantics).
        Returns an event id for :meth:`cancel`.
        """
        event_id = self._next_id
        self._next_id += 1
        seq = self._next_seq
        self._next_seq += 1
        self._live[event_id] = (fn, args, deadline, self.clock.now)
        heapq.heappush(self._heap, (deadline, seq, event_id))
        self.scheduled += 1
        if len(self._live) > self.max_pending:
            self.max_pending = len(self._live)
        return event_id

    def call_later(self, delay: float, fn: Callable[..., Any], *args: Any) -> int:
        """Register ``fn(*args)`` to run *delay* seconds from now (>= 0)."""
        if delay < 0:
            raise ValueError("delay cannot be negative")
        return self.at(self.clock.now + delay, fn, *args)

    def post(self, fn: Callable[..., Any], *args: Any) -> int:
        """Zero-delay scheduling: run in the current (or next) drain."""
        return self.at(self.clock.now, fn, *args)

    def cancel(self, event_id: int) -> bool:
        """Forget a pending event; True when it had not fired yet."""
        if self._live.pop(event_id, None) is None:
            return False
        self.cancelled += 1
        return True

    # ------------------------------------------------------------------
    # draining
    # ------------------------------------------------------------------
    def _pop_due(self, horizon: float | None) -> tuple[float, Callable[..., Any], tuple, float] | None:
        """The earliest live event due by *horizon* (None = no bound)."""
        while self._heap:
            deadline, _seq, event_id = self._heap[0]
            if event_id not in self._live:
                heapq.heappop(self._heap)  # cancelled
                continue
            if horizon is not None and deadline > horizon:
                return None
            heapq.heappop(self._heap)
            fn, args, _deadline, posted_at = self._live.pop(event_id)
            return deadline, fn, args, posted_at
        return None

    def _fire(self, deadline: float, fn: Callable[..., Any], args: tuple, posted_at: float) -> None:
        clock = self.clock
        if deadline > clock.now:
            # Land exactly on the deadline: `now += deadline - now` can
            # overshoot by one ulp, and exactness is part of the contract.
            clock.now = deadline
        self.fired += 1
        if self.trace_events and deadline > posted_at and obs_trace.TRACER is not None:
            obs_trace.TRACER.emit(
                "scheduler.fire",
                clock.now,
                element="scheduler",
                deadline=round(deadline, 6),
                pending=len(self._live),
            )
        fn(*args)

    def step(self) -> bool:
        """Fire exactly one event (the earliest); False when idle."""
        entry = self._pop_due(None)
        if entry is None:
            return False
        self._fire(*entry)
        return True

    def run(self, until: float | None = None, limit: int | None = None) -> int:
        """Drain events in ``(deadline, seq)`` order; returns events fired.

        *until* bounds the drain to events due at or before that time
        (inclusive); None drains until the queue is empty.  Events posted by
        handlers during the drain participate immediately — a zero-delay
        post from inside a handler fires in this same drain.  *limit* is a
        safety valve against runaway self-posting loops.
        """
        fired = 0
        # Re-entrant run (a handler drained the scheduler itself) would
        # double-fire; the inner call is a no-op and the outer loop picks
        # the new events up naturally.
        if self._draining:
            return 0
        self._draining = True
        try:
            while True:
                if limit is not None and fired >= limit:
                    break
                entry = self._pop_due(until)
                if entry is None:
                    break
                self._fire(*entry)
                fired += 1
        finally:
            self._draining = False
        return fired

    def run_until_idle(self, limit: int | None = None) -> int:
        """Drain everything, advancing the clock as far as events require."""
        return self.run(until=None, limit=limit)

    def advance(self, seconds: float) -> int:
        """Move the clock forward by *seconds* and drain everything now due.

        ``advance(0)`` is meaningful: it drains events due at the current
        instant (the zero-delay guarantee) instead of silently doing
        nothing, which is the scheduler-level fix for the old
        "``VirtualClock.advance(0)`` is accepted but a zero-delay timer
        waits for the next tick" trap.
        """
        if seconds < 0:
            raise ValueError("time cannot move backwards")
        target = self.clock.now + seconds
        fired = self.run(until=target)
        # The drain stops at the last event; cover the remaining gap.  Set
        # the clock rather than advancing by the difference — the float
        # catch-up can overshoot by one ulp, and the contract is landing
        # exactly on the requested instant.
        if self.clock.now < target:
            self.clock.now = target
        return fired

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"EventScheduler(now={self.clock.now:.3f}, pending={len(self._live)}, "
            f"fired={self.fired})"
        )


# ----------------------------------------------------------------------
# process-wide event-core switch
# ----------------------------------------------------------------------
#: When True, every newly constructed :class:`~repro.netsim.path.Path`
#: binds its own :class:`EventScheduler` and routes sends through it (the
#: synchronous API becomes a thin post-and-drain driver).  Controlled by
#: :func:`use_event_core` and the ``REPRO_EVENT_CORE`` environment variable
#: so worker-pool subprocesses inherit the mode.
_EVENT_CORE = False


def _env_flag() -> bool:
    import os

    return os.environ.get("REPRO_EVENT_CORE", "") not in ("", "0", "false", "no")


_EVENT_CORE = _env_flag()


def event_core_enabled() -> bool:
    """True when new paths should run on the event scheduler."""
    return _EVENT_CORE


class use_event_core:
    """Context manager (or plain on/off switch) for event-core mode.

    Sets both the module flag and ``REPRO_EVENT_CORE`` in the environment,
    so worker processes spawned while the mode is active inherit it — the
    differential suite leans on this to compare serial, thread and process
    runs of the same matrix.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._saved_flag: bool | None = None
        self._saved_env: str | None = None

    def __enter__(self) -> "use_event_core":
        import os

        global _EVENT_CORE
        self._saved_flag = _EVENT_CORE
        self._saved_env = os.environ.get("REPRO_EVENT_CORE")
        _EVENT_CORE = self.enabled
        if self.enabled:
            os.environ["REPRO_EVENT_CORE"] = "1"
        else:
            os.environ.pop("REPRO_EVENT_CORE", None)
        return self

    def __exit__(self, *exc_info: object) -> None:
        import os

        global _EVENT_CORE
        assert self._saved_flag is not None
        _EVENT_CORE = self._saved_flag
        if self._saved_env is None:
            os.environ.pop("REPRO_EVENT_CORE", None)
        else:
            os.environ["REPRO_EVENT_CORE"] = self._saved_env
