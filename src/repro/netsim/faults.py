"""Deterministic fault injection for the network simulator.

The paper's methodology only works on real, lossy networks because lib·erate
repeats trials and tolerates noise.  This module makes the simulator lossy on
demand: a :class:`FaultElement` placed at the client edge of a path injects
packet loss (iid and Gilbert–Elliott bursts), duplication, payload/header
corruption, reorder jitter, link flaps, and mid-flow middlebox restarts.

Every random decision is drawn from a per-flow RNG seeded with
:func:`repro.runtime.derive_seed`, so a run with a given
:class:`FaultProfile` is bit-reproducible: the same flow sees the same fault
sequence regardless of what other flows exist or which worker replays it.
"""

from __future__ import annotations

import random
import struct
from dataclasses import dataclass, field, replace

from repro.netsim.element import NetworkElement, TransitContext
from repro.obs import live as obs_live
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.packets.flow import Direction
from repro.packets.ip import IPPacket
from repro.runtime import derive_seed


@dataclass(frozen=True)
class FaultProfile:
    """One configuration of the fault injector.

    All rates are per-packet probabilities in [0, 1].  A profile with every
    rate at zero and no flap/restart schedule is a no-op: environments built
    with such a profile (or with ``faults=None``) take exactly the fault-free
    code path.

    Attributes:
        seed: base seed for the per-flow RNGs.
        loss_rate: iid packet loss.
        burst_loss_rate: extra loss applied while the Gilbert–Elliott chain
            is in its bad state.
        burst_enter / burst_exit: per-packet transition probabilities of the
            Gilbert–Elliott chain (good→bad and bad→good).
        duplicate_rate: probability a packet is emitted twice.
        corrupt_rate: probability one payload bit is flipped; the transport
            checksum is frozen at its pre-corruption value so validating
            receivers detect (and drop) the damage, as on a real link.
        header_corrupt_rate: probability the IP header checksum is frozen at
            a wrong value (header-validating routers drop the packet).
        reorder_rate: probability a packet is held back and emitted after the
            next packet (adjacent swap jitter).
        flap_period / flap_duration: when set, the link is down for
            *flap_duration* seconds at the start of every *flap_period*
            seconds of virtual time (every packet in the window is lost).
        restart_interval: when set, the configured restart targets (usually
            the middlebox) have their state wiped every *restart_interval*
            seconds of virtual time — a mid-flow middlebox restart.
    """

    seed: int = 0
    loss_rate: float = 0.0
    burst_loss_rate: float = 0.0
    burst_enter: float = 0.0
    burst_exit: float = 0.3
    duplicate_rate: float = 0.0
    corrupt_rate: float = 0.0
    header_corrupt_rate: float = 0.0
    reorder_rate: float = 0.0
    flap_period: float | None = None
    flap_duration: float = 0.0
    restart_interval: float | None = None

    def is_zero(self) -> bool:
        """True when the profile injects nothing at all."""
        return (
            self.loss_rate == 0.0
            and (self.burst_loss_rate == 0.0 or self.burst_enter == 0.0)
            and self.duplicate_rate == 0.0
            and self.corrupt_rate == 0.0
            and self.header_corrupt_rate == 0.0
            and self.reorder_rate == 0.0
            and self.flap_period is None
            and self.restart_interval is None
        )

    def with_seed(self, seed: int) -> "FaultProfile":
        """The same profile reseeded (for multi-seed chaos sweeps)."""
        return replace(self, seed=seed)


def lossy_profile(seed: int = 0) -> FaultProfile:
    """The acceptance profile: 5% iid loss plus 2% duplication."""
    return FaultProfile(seed=seed, loss_rate=0.05, duplicate_rate=0.02)


def bursty_profile(seed: int = 0) -> FaultProfile:
    """Gilbert–Elliott burst loss on top of light iid loss."""
    return FaultProfile(
        seed=seed,
        loss_rate=0.01,
        burst_loss_rate=0.35,
        burst_enter=0.02,
        burst_exit=0.25,
        duplicate_rate=0.01,
    )


def chaos_profile(seed: int = 0) -> FaultProfile:
    """Every fault class at once, mildly — for degradation testing."""
    return FaultProfile(
        seed=seed,
        loss_rate=0.03,
        burst_loss_rate=0.25,
        burst_enter=0.01,
        burst_exit=0.3,
        duplicate_rate=0.02,
        corrupt_rate=0.01,
        header_corrupt_rate=0.01,
        reorder_rate=0.02,
        flap_period=300.0,
        flap_duration=0.5,
        restart_interval=600.0,
    )


#: Named profiles selectable from the CLI (`--faults lossy`).
FAULT_PROFILES = {
    "lossy": lossy_profile,
    "bursty": bursty_profile,
    "chaos": chaos_profile,
}


@dataclass
class FaultStats:
    """Counters of every fault the element injected (diagnostics)."""

    processed: int = 0
    lost: int = 0
    burst_lost: int = 0
    duplicated: int = 0
    corrupted: int = 0
    header_corrupted: int = 0
    reordered: int = 0
    flap_dropped: int = 0
    restarts: int = 0

    def total_injected(self) -> int:
        """Total fault events across all classes."""
        return (
            self.lost
            + self.burst_lost
            + self.duplicated
            + self.corrupted
            + self.header_corrupted
            + self.reordered
            + self.flap_dropped
            + self.restarts
        )


_FlowKey = tuple[str, str, int, int, int]


class FaultElement(NetworkElement):
    """A path element that injects the faults of a :class:`FaultProfile`.

    Placed at the client edge (index 0) it models an unreliable access link:
    client→server packets are damaged before any middlebox sees them, and
    server→client packets are damaged after every middlebox processed them.

    Args:
        profile: the fault configuration.
        restart_targets: elements whose state is wiped on each scheduled
            middlebox restart (usually the environment's classifier).
    """

    name = "fault-injector"

    def __init__(self, profile: FaultProfile, restart_targets: tuple = ()) -> None:
        self.profile = profile
        self.restart_targets = list(restart_targets)
        self.stats = FaultStats()
        self._flow_rngs: dict[_FlowKey, random.Random] = {}
        self._burst_bad: dict[_FlowKey, bool] = {}
        self._held: tuple[IPPacket, Direction] | None = None
        self._restart_epoch = 0

    # ------------------------------------------------------------------
    # element interface
    # ------------------------------------------------------------------
    def process(
        self, packet: IPPacket, direction: Direction, ctx: TransitContext
    ) -> list[IPPacket]:
        """Apply the profile's faults to one packet."""
        profile = self.profile
        self.stats.processed += 1
        self._maybe_restart(ctx)

        if self._link_down(ctx):
            self.stats.flap_dropped += 1
            self._record_fault("drop", "flap", packet, ctx)
            return []

        rng = self._rng_for(packet)
        loss_cause = self._lose(packet, rng)
        if loss_cause is not None:
            self._record_fault("drop", loss_cause, packet, ctx)
            return self._release_held()

        if profile.corrupt_rate and rng.random() < profile.corrupt_rate:
            corrupted = _corrupt_payload(packet, rng)
            if corrupted is not None:
                packet = corrupted
                self.stats.corrupted += 1
                self._record_fault("corrupt", "payload-bit", packet, ctx)
        if profile.header_corrupt_rate and rng.random() < profile.header_corrupt_rate:
            packet = _corrupt_header(packet, rng)
            self.stats.header_corrupted += 1
            self._record_fault("corrupt", "ip-header", packet, ctx)

        outputs = [packet]
        if profile.duplicate_rate and rng.random() < profile.duplicate_rate:
            outputs.append(packet.copy())
            self.stats.duplicated += 1
            self._record_fault("duplicate", "duplicate", packet, ctx)

        if (
            profile.reorder_rate
            and self._held is None
            and len(outputs) == 1
            and rng.random() < profile.reorder_rate
        ):
            # Hold this packet back; it is emitted after the next packet.
            self._held = (packet, direction)
            self.stats.reordered += 1
            self._record_fault("reorder", "held-back", packet, ctx)
            return []
        return self._release_held(direction) + outputs

    def _record_fault(
        self, fault: str, cause: str, packet: IPPacket, ctx: TransitContext
    ) -> None:
        """One fault decision, to the tracer and the metrics registry.

        ``fault.drop`` events are the injector's ledger: the property tests
        assert their count equals ``stats.lost + burst_lost + flap_dropped``.
        """
        if obs_trace.TRACER is not None:
            obs_trace.TRACER.emit(
                f"fault.{fault}",
                ctx.clock.now,
                element=self.name,
                reason=cause,
                **obs_trace.packet_fields(packet),
            )
        if obs_metrics.METRICS is not None:
            obs_metrics.METRICS.inc(f"faults.{fault}")
            if fault == "drop":
                obs_metrics.METRICS.inc("netsim.packets.dropped")
                obs_metrics.METRICS.inc(f"netsim.packets.dropped.fault-{cause}")
            elif fault == "corrupt":
                obs_metrics.METRICS.inc("netsim.packets.corrupted")
        if obs_live.BUS is not None:
            obs_live.BUS.emit(
                f"fault.{fault}", element=self.name, reason=cause
            )

    def reset(self) -> None:
        """Drop transient flow state (RNG streams, burst state, held packet).

        Stats and the restart schedule are time-based and survive resets so
        diagnostics cover a whole experiment.
        """
        self._flow_rngs.clear()
        self._burst_bad.clear()
        self._held = None

    # ------------------------------------------------------------------
    # fault mechanics
    # ------------------------------------------------------------------
    def _rng_for(self, packet: IPPacket) -> random.Random:
        key = _flow_key(packet)
        rng = self._flow_rngs.get(key)
        if rng is None:
            rng = random.Random(derive_seed(self.profile.seed, "fault", *key))
            self._flow_rngs[key] = rng
        return rng

    def _lose(self, packet: IPPacket, rng: random.Random) -> str | None:
        """Loss decision for one packet: "loss", "burst-loss", or None (kept)."""
        profile = self.profile
        if profile.loss_rate and rng.random() < profile.loss_rate:
            self.stats.lost += 1
            return "loss"
        if profile.burst_loss_rate and profile.burst_enter:
            key = _flow_key(packet)
            bad = self._burst_bad.get(key, False)
            lost = bad and rng.random() < profile.burst_loss_rate
            if bad:
                if rng.random() < profile.burst_exit:
                    bad = False
            elif rng.random() < profile.burst_enter:
                bad = True
            self._burst_bad[key] = bad
            if lost:
                self.stats.burst_lost += 1
                return "burst-loss"
        return None

    def _link_down(self, ctx: TransitContext) -> bool:
        profile = self.profile
        if profile.flap_period is None or profile.flap_duration <= 0.0:
            return False
        return (ctx.clock.now % profile.flap_period) < profile.flap_duration

    def _maybe_restart(self, ctx: TransitContext) -> None:
        interval = self.profile.restart_interval
        if interval is None or not self.restart_targets:
            return
        epoch = int(ctx.clock.now // interval)
        if epoch > self._restart_epoch:
            self._restart_epoch = epoch
            for target in self.restart_targets:
                target.reset()
            self.stats.restarts += 1
            if obs_trace.TRACER is not None:
                obs_trace.TRACER.emit(
                    "fault.restart",
                    ctx.clock.now,
                    element=self.name,
                    targets=[t.name for t in self.restart_targets],
                )
            if obs_metrics.METRICS is not None:
                obs_metrics.METRICS.inc("faults.restarts")

    def _release_held(self, direction: Direction | None = None) -> list[IPPacket]:
        """Flush a held (reordered) packet.

        A held packet traveling the *opposite* direction cannot simply be
        prepended to this packet's output list (it would traverse the wrong
        way), so it is only released onto same-direction traffic; reset()
        discards leftovers.
        """
        if self._held is None:
            return []
        held, held_direction = self._held
        if direction is None or held_direction is not direction:
            return []
        self._held = None
        return [held]


def _flow_key(packet: IPPacket) -> _FlowKey:
    sport, dport = 0, 0
    tcp = packet.tcp
    udp = packet.udp
    if tcp is not None:
        sport, dport = tcp.sport, tcp.dport
    elif udp is not None:
        sport, dport = udp.sport, udp.dport
    elif packet.is_fragment:
        # Fragments carry raw transport bytes; key them by datagram identity.
        sport = packet.identification
    return (packet.src, packet.dst, packet.effective_protocol, sport, dport)


def _corrupt_payload(packet: IPPacket, rng: random.Random) -> IPPacket | None:
    """Flip one payload bit, freezing the transport checksum at its old value.

    Real link corruption damages bits *after* the checksum was computed, so
    the receiver sees a mismatch and (if it validates) drops the segment.
    Returns None when the packet has nothing corruptible.
    """
    tcp = packet.tcp
    udp = packet.udp
    if tcp is not None and tcp.payload:
        wire = tcp.to_bytes(packet.src, packet.dst)
        stale = struct.unpack("!H", wire[16:18])[0]
        flipped = _flip_bit(tcp.payload, rng)
        return packet.copy(transport=tcp.copy(payload=flipped, checksum=stale), checksum=None)
    if udp is not None and udp.payload:
        wire = udp.to_bytes(packet.src, packet.dst)
        stale = struct.unpack("!H", wire[6:8])[0]
        flipped = _flip_bit(udp.payload, rng)
        return packet.copy(transport=udp.copy(payload=flipped, checksum=stale), checksum=None)
    if isinstance(packet.transport, bytes) and packet.transport:
        return packet.copy(transport=_flip_bit(packet.transport, rng), checksum=None)
    return None


def _corrupt_header(packet: IPPacket, rng: random.Random) -> IPPacket:
    """Freeze the IP header checksum at a (deterministically) wrong value."""
    wrong = rng.randrange(1, 0xFFFF)
    if packet.checksum is not None and wrong == packet.checksum:
        wrong = (wrong + 1) & 0xFFFF or 1
    return packet.copy(checksum=wrong)


def _flip_bit(data: bytes, rng: random.Random) -> bytes:
    index = rng.randrange(len(data))
    bit = 1 << rng.randrange(8)
    corrupted = bytearray(data)
    corrupted[index] ^= bit
    return bytes(corrupted)
