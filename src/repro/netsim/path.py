"""Path composition: endpoints connected through an ordered element chain.

Packet propagation is event-driven: every unit of work — "this packet is at
element *i*" — is an explicit agenda item that the frame loop consumes in
depth-first order, byte-identical to the historical nested-call driver (the
scheduler differential suite pins this).  An element may inject packets back
toward the sender (ICMP Time Exceeded, censor RSTs) or forward toward the
destination; injected packets traverse the remaining elements exactly as
real ones would.

When a :class:`~repro.netsim.scheduler.EventScheduler` is bound (explicitly
or via the process-wide event-core switch), sends become scheduler events:
the synchronous API posts a frame and drains it immediately (the thin
driver), while :meth:`schedule_from_client` defers frames to future virtual
times so thousands of flows interleave in ``(deadline, seq)`` order —
congestion scenarios the nested driver cannot express.
"""

from __future__ import annotations

from typing import Protocol

from repro.netsim import scheduler as _schedmod
from repro.netsim.clock import VirtualClock
from repro.netsim.element import NetworkElement, TransitContext
from repro.netsim.hop import RouterHop
from repro.netsim.scheduler import EventScheduler
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.packets.batch import serialize_batch
from repro.packets.flow import Direction
from repro.packets.ip import IPPacket

#: Process-wide count of packet propagations across every simulated path.
#: Monotonically increasing, never reset — benchmarks take deltas around the
#: measured section to report packets/second.  Counts frames (a packet
#: entering the chain), not per-element steps: agenda continuation items do
#: not re-count, so the meaning is identical to the nested-call driver's.
_packets_propagated_total = 0


def packets_propagated() -> int:
    """Total packets propagated across all paths since process start."""
    return _packets_propagated_total


class Endpoint(Protocol):
    """Anything that can terminate a path (client or server stack)."""

    def receive(self, packet: IPPacket) -> list[IPPacket]:
        """Accept a packet; return response packets to send back."""


class _SinkEndpoint:
    """Default endpoint that silently swallows packets."""

    def receive(self, packet: IPPacket) -> list[IPPacket]:
        return []


class Path:
    """A bidirectional chain: client endpoint ⇄ elements ⇄ server endpoint.

    Elements are ordered from the client side to the server side.  The
    endpoints are attached after construction (they usually need the path's
    clock).

    Args:
        clock: shared virtual clock.
        elements: processing stages, client side first.
        max_depth: recursion guard against response loops.
        scheduler: an event scheduler to route sends through.  ``None``
            binds a fresh one automatically when the process-wide
            event-core switch (:func:`repro.netsim.scheduler.use_event_core`
            / ``REPRO_EVENT_CORE``) is active, and otherwise leaves the
            path in direct-call mode.
    """

    def __init__(
        self,
        clock: VirtualClock,
        elements: list[NetworkElement],
        max_depth: int = 50,
        scheduler: EventScheduler | None = None,
    ) -> None:
        self.clock = clock
        self.elements = list(elements)
        self.client_endpoint: Endpoint = _SinkEndpoint()
        self.server_endpoint: Endpoint = _SinkEndpoint()
        self.max_depth = max_depth
        if scheduler is None and _schedmod.event_core_enabled():
            scheduler = EventScheduler(clock)
        self.scheduler = scheduler

    # ------------------------------------------------------------------
    # public API — synchronous driver
    # ------------------------------------------------------------------
    def bind_scheduler(self, scheduler: EventScheduler) -> EventScheduler:
        """Attach *scheduler*; subsequent sends route through its queue."""
        self.scheduler = scheduler
        return scheduler

    def send_from_client(self, packet: IPPacket) -> None:
        """Inject *packet* at the client edge, traveling toward the server.

        With a scheduler bound this is the thin driver: the frame is posted
        as a zero-delay event and the due queue is drained before
        returning, so the call is byte-identical to the direct walk.
        """
        sched = self.scheduler
        if sched is not None:
            sched.post(self._propagate, packet, Direction.CLIENT_TO_SERVER, 0, 0)
            sched.run(until=sched.now)
            return
        self._propagate(packet, Direction.CLIENT_TO_SERVER, index=0, depth=0)

    def send_from_server(self, packet: IPPacket) -> None:
        """Inject *packet* at the server edge, traveling toward the client."""
        sched = self.scheduler
        if sched is not None:
            sched.post(
                self._propagate, packet, Direction.SERVER_TO_CLIENT, len(self.elements) - 1, 0
            )
            sched.run(until=sched.now)
            return
        self._propagate(
            packet, Direction.SERVER_TO_CLIENT, index=len(self.elements) - 1, depth=0
        )

    def send_batch_from_client(self, packets: list[IPPacket]) -> None:
        """Inject *packets* at the client edge in order, pre-encoding the batch.

        Wire encoding is vectorized across the whole batch up front (sharing
        per-(src, dst) pseudo-header work and warming every wire memo) so
        downstream taps, DPI byte scans and replay observation serialize by
        cache hit.  Delivery is otherwise identical to calling
        :meth:`send_from_client` once per packet.  Skipped when metrics are
        live: the per-packet path owns the wirecache hit/miss counts.
        """
        if obs_metrics.METRICS is None:
            serialize_batch(packets, lenient=True)
        for packet in packets:
            self.send_from_client(packet)

    # ------------------------------------------------------------------
    # public API — deferred (event-native) driver
    # ------------------------------------------------------------------
    def schedule_from_client(
        self, packet: IPPacket, delay: float = 0.0, at: float | None = None
    ) -> int:
        """Schedule a client-edge frame for a future virtual time.

        Unlike :meth:`send_from_client`, the frame does **not** run now; it
        fires when :meth:`run` (or the scheduler) drains past its deadline,
        interleaving with every other scheduled flow in ``(deadline, seq)``
        order.  Returns the scheduler event id (cancellable).
        """
        sched = self._require_scheduler()
        deadline = at if at is not None else sched.now + delay
        return sched.at(deadline, self._propagate, packet, Direction.CLIENT_TO_SERVER, 0, 0)

    def schedule_from_server(
        self, packet: IPPacket, delay: float = 0.0, at: float | None = None
    ) -> int:
        """Schedule a server-edge frame for a future virtual time."""
        sched = self._require_scheduler()
        deadline = at if at is not None else sched.now + delay
        return sched.at(
            deadline, self._propagate, packet, Direction.SERVER_TO_CLIENT,
            len(self.elements) - 1, 0,
        )

    def run(self, until: float | None = None) -> int:
        """Drain scheduled frames in virtual-time order; returns events fired."""
        return self._require_scheduler().run(until=until)

    def _require_scheduler(self) -> EventScheduler:
        if self.scheduler is None:
            self.scheduler = EventScheduler(self.clock)
        return self.scheduler

    # ------------------------------------------------------------------
    # chain management
    # ------------------------------------------------------------------
    def insert_element(self, element: NetworkElement, index: int = 0) -> None:
        """Insert *element* into the chain at *index* (0 = client edge)."""
        self.elements.insert(index, element)

    def element_named(self, name: str) -> NetworkElement:
        """Look an element up by name (raises KeyError when absent)."""
        for element in self.elements:
            if element.name == name:
                return element
        raise KeyError(name)

    def reset(self) -> None:
        """Reset every element's per-flow state (between independent replays)."""
        for element in self.elements:
            element.reset()

    # ------------------------------------------------------------------
    # propagation machinery (the event core's frame executor)
    # ------------------------------------------------------------------
    def _propagate(self, packet: IPPacket, direction: Direction, index: int, depth: int) -> None:
        """Run one frame to completion via an explicit event agenda.

        Agenda items are ``(packet, direction, index, depth, counted)``
        tuples consumed LIFO, which reproduces the nested-call driver's
        depth-first order exactly: an element's extra outputs complete
        before its last output continues, and endpoint responses run before
        anything that was stacked earlier.  ``counted`` is False for
        continuation items (the same packet resuming mid-chain) so the
        process-wide propagation counter keeps its historical meaning.

        Injections via the transit context (:class:`_FrameContext`) remain
        synchronous re-entrant calls — they must finish before the
        injecting element's ``process`` returns, exactly as before.
        """
        agenda: list[tuple[IPPacket, Direction, int, int, bool]] = [
            (packet, direction, index, depth, True)
        ]
        while agenda:
            pkt, item_direction, i, item_depth, counted = agenda.pop()
            self._walk(agenda, pkt, item_direction, i, item_depth, counted)

    def _walk(
        self,
        agenda: list[tuple[IPPacket, Direction, int, int, bool]],
        packet: IPPacket,
        direction: Direction,
        index: int,
        depth: int,
        counted: bool,
    ) -> None:
        global _packets_propagated_total
        if counted:
            _packets_propagated_total += 1
        if depth > self.max_depth:
            raise RuntimeError("packet propagation exceeded max depth (response loop?)")
        tracer = obs_trace.TRACER
        metrics = obs_metrics.METRICS
        if counted and metrics is not None:
            metrics.inc("netsim.packets.propagated")
        step = 1 if direction is Direction.CLIENT_TO_SERVER else -1
        elements = self.elements
        count = len(elements)
        # One mutable context serves the whole walk: injections only happen
        # synchronously inside element.process, when ``index`` is current.
        ctx = _FrameContext(self, direction, depth, step)
        current = packet
        i = index
        if tracer is None and metrics is None:
            # Obs-free hot loop: no per-hop emit/counter checks, and runs of
            # consecutive routers collapse into one TTL subtraction.  Only
            # sound with nothing per-hop observable (no traverse events, no
            # hop counters); the traced loop below stays hop-by-hop so
            # golden traces are byte-identical.
            while 0 <= i < count:
                element = elements[i]
                if type(element) is RouterHop and (
                    current.version == 4
                    and current.ihl is None
                    and current.total_length is None
                    and current.checksum is None
                ):
                    # Walk the maximal run of consecutive routers.  A run of
                    # k routers applied to a pristine packet with TTL > k is
                    # exactly k TTL decrements: headers stay valid at every
                    # hop (auto-computed fields are self-consistent) and the
                    # TTL cannot expire mid-run, so no drops, no ICMP, and
                    # the single clone below is byte-identical to hop-by-hop.
                    j = i + step
                    run = 1
                    while 0 <= j < count and type(elements[j]) is RouterHop:
                        run += 1
                        j += step
                    if current.ttl > run:
                        current = current.decremented(run)
                        i = j
                        continue
                ctx.index = i
                outputs = element.process(current, direction, ctx)
                if not outputs:
                    return
                if len(outputs) > 1:
                    # An element may emit several packets (e.g. reassembly
                    # flushes); extras propagate to completion before the
                    # last output continues, so the continuation is stacked
                    # first (LIFO) and the extras above it in order.
                    agenda.append((outputs[-1], direction, i + step, depth, False))
                    for extra in reversed(outputs[:-1]):
                        agenda.append((extra, direction, i + step, depth + 1, True))
                    return
                current = outputs[-1]
                i += step
            self._deliver_to_endpoint(agenda, current, direction, depth)
            return
        while 0 <= i < count:
            element = elements[i]
            ctx.index = i
            outputs = element.process(current, direction, ctx)
            if tracer is not None:
                tracer.emit(
                    "hop.traverse",
                    self.clock.now,
                    element=element.name,
                    dir=direction.value,
                    out=len(outputs),
                    **obs_trace.packet_fields(current),
                )
            if not outputs:
                if metrics is not None:
                    metrics.inc("netsim.hop.absorbed")
                    metrics.inc(f"netsim.hop.absorbed.{element.name}")
                return
            if metrics is not None:
                metrics.inc("netsim.hop.forwarded")
            if len(outputs) > 1:
                agenda.append((outputs[-1], direction, i + step, depth, False))
                for extra in reversed(outputs[:-1]):
                    agenda.append((extra, direction, i + step, depth + 1, True))
                return
            current = outputs[-1]
            i += step
        if tracer is not None:
            tracer.emit(
                "endpoint.deliver",
                self.clock.now,
                endpoint="server" if direction is Direction.CLIENT_TO_SERVER else "client",
                dir=direction.value,
                **obs_trace.packet_fields(current),
            )
        if metrics is not None:
            metrics.inc("netsim.packets.delivered")
        self._deliver_to_endpoint(agenda, current, direction, depth)

    def _deliver_to_endpoint(
        self,
        agenda: list[tuple[IPPacket, Direction, int, int, bool]],
        packet: IPPacket,
        direction: Direction,
        depth: int,
    ) -> None:
        """Hand the frame's packet to its endpoint; stack the responses.

        Responses are pushed in reverse so they pop in order, running
        before any earlier-stacked work — the nested-call driver's
        "responses recurse inside delivery" order.
        """
        if direction is Direction.CLIENT_TO_SERVER:
            responses = self.server_endpoint.receive(packet)
            back = Direction.SERVER_TO_CLIENT
            start = len(self.elements) - 1
        else:
            responses = self.client_endpoint.receive(packet)
            back = Direction.CLIENT_TO_SERVER
            start = 0
        for response in reversed(responses):
            agenda.append((response, back, start, depth + 1, True))

    def _context_for(self, element_index: int, direction: Direction, depth: int) -> TransitContext:
        """A standalone :class:`TransitContext` for one element position.

        Kept for callers that hand-drive a single element; the propagation
        loop itself uses the cheaper reusable :class:`_FrameContext`.
        """
        step = 1 if direction is Direction.CLIENT_TO_SERVER else -1

        def inject_back(injected: IPPacket) -> None:
            self._propagate(injected, direction.reversed, element_index - step, depth + 1)

        def inject_forward(injected: IPPacket) -> None:
            self._propagate(injected, direction, element_index + step, depth + 1)

        return TransitContext(
            clock=self.clock,
            inject_back=inject_back,
            inject_forward=inject_forward,
            scheduler=self.scheduler,
        )


class _FrameContext:
    """The propagation loop's transit context: one per frame, not per hop.

    Duck-typed stand-in for :class:`TransitContext` (same ``clock`` /
    ``inject_back`` / ``inject_forward`` / ``scheduler`` surface).  The
    owning frame updates ``index`` as the walk advances; elements only
    inject synchronously from ``process``, so the position is always
    current when it is read.
    """

    __slots__ = ("clock", "scheduler", "index", "_path", "_direction", "_depth", "_step")

    def __init__(self, path: Path, direction: Direction, depth: int, step: int) -> None:
        self.clock = path.clock
        self.scheduler = path.scheduler
        self.index = 0
        self._path = path
        self._direction = direction
        self._depth = depth
        self._step = step

    def inject_back(self, injected: IPPacket) -> None:
        self._path._propagate(
            injected, self._direction.reversed, self.index - self._step, self._depth + 1
        )

    def inject_forward(self, injected: IPPacket) -> None:
        self._path._propagate(
            injected, self._direction, self.index + self._step, self._depth + 1
        )
