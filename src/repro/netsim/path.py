"""Path composition: endpoints connected through an ordered element chain.

Packets travel synchronously.  An element may inject packets back toward the
sender (ICMP Time Exceeded, censor RSTs) or forward toward the destination;
injected packets traverse the remaining elements exactly as real ones would.
"""

from __future__ import annotations

from typing import Protocol

from repro.netsim.clock import VirtualClock
from repro.netsim.element import NetworkElement, TransitContext
from repro.netsim.hop import RouterHop
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.packets.batch import serialize_batch
from repro.packets.flow import Direction
from repro.packets.ip import IPPacket

#: Process-wide count of packet propagations across every simulated path.
#: Monotonically increasing, never reset — benchmarks take deltas around the
#: measured section to report packets/second.
_packets_propagated_total = 0


def packets_propagated() -> int:
    """Total packets propagated across all paths since process start."""
    return _packets_propagated_total


class Endpoint(Protocol):
    """Anything that can terminate a path (client or server stack)."""

    def receive(self, packet: IPPacket) -> list[IPPacket]:
        """Accept a packet; return response packets to send back."""


class _SinkEndpoint:
    """Default endpoint that silently swallows packets."""

    def receive(self, packet: IPPacket) -> list[IPPacket]:
        return []


class Path:
    """A bidirectional chain: client endpoint ⇄ elements ⇄ server endpoint.

    Elements are ordered from the client side to the server side.  The
    endpoints are attached after construction (they usually need the path's
    clock).

    Args:
        clock: shared virtual clock.
        elements: processing stages, client side first.
        max_depth: recursion guard against response loops.
    """

    def __init__(
        self,
        clock: VirtualClock,
        elements: list[NetworkElement],
        max_depth: int = 50,
    ) -> None:
        self.clock = clock
        self.elements = list(elements)
        self.client_endpoint: Endpoint = _SinkEndpoint()
        self.server_endpoint: Endpoint = _SinkEndpoint()
        self.max_depth = max_depth

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def send_from_client(self, packet: IPPacket) -> None:
        """Inject *packet* at the client edge, traveling toward the server."""
        self._propagate(packet, Direction.CLIENT_TO_SERVER, index=0, depth=0)

    def send_from_server(self, packet: IPPacket) -> None:
        """Inject *packet* at the server edge, traveling toward the client."""
        self._propagate(
            packet, Direction.SERVER_TO_CLIENT, index=len(self.elements) - 1, depth=0
        )

    def send_batch_from_client(self, packets: list[IPPacket]) -> None:
        """Inject *packets* at the client edge in order, pre-encoding the batch.

        Wire encoding is vectorized across the whole batch up front (sharing
        per-(src, dst) pseudo-header work and warming every wire memo) so
        downstream taps, DPI byte scans and replay observation serialize by
        cache hit.  Delivery is otherwise identical to calling
        :meth:`send_from_client` once per packet.  Skipped when metrics are
        live: the per-packet path owns the wirecache hit/miss counts.
        """
        if obs_metrics.METRICS is None:
            serialize_batch(packets, lenient=True)
        for packet in packets:
            self._propagate(packet, Direction.CLIENT_TO_SERVER, index=0, depth=0)

    def insert_element(self, element: NetworkElement, index: int = 0) -> None:
        """Insert *element* into the chain at *index* (0 = client edge)."""
        self.elements.insert(index, element)

    def element_named(self, name: str) -> NetworkElement:
        """Look an element up by name (raises KeyError when absent)."""
        for element in self.elements:
            if element.name == name:
                return element
        raise KeyError(name)

    def reset(self) -> None:
        """Reset every element's per-flow state (between independent replays)."""
        for element in self.elements:
            element.reset()

    # ------------------------------------------------------------------
    # propagation machinery
    # ------------------------------------------------------------------
    def _propagate(self, packet: IPPacket, direction: Direction, index: int, depth: int) -> None:
        global _packets_propagated_total
        _packets_propagated_total += 1
        if depth > self.max_depth:
            raise RuntimeError("packet propagation exceeded max depth (response loop?)")
        tracer = obs_trace.TRACER
        metrics = obs_metrics.METRICS
        if metrics is not None:
            metrics.inc("netsim.packets.propagated")
        step = 1 if direction is Direction.CLIENT_TO_SERVER else -1
        elements = self.elements
        count = len(elements)
        # One mutable context serves the whole frame: injections only happen
        # synchronously inside element.process, when ``index`` is current.
        ctx = _FrameContext(self, direction, depth, step)
        current = packet
        i = index
        if tracer is None and metrics is None:
            # Obs-free hot loop: no per-hop emit/counter checks, and runs of
            # consecutive routers collapse into one TTL subtraction.  Only
            # sound with nothing per-hop observable (no traverse events, no
            # hop counters); the traced loop below stays hop-by-hop so
            # golden traces are byte-identical.
            while 0 <= i < count:
                element = elements[i]
                if type(element) is RouterHop and (
                    current.version == 4
                    and current.ihl is None
                    and current.total_length is None
                    and current.checksum is None
                ):
                    # Walk the maximal run of consecutive routers.  A run of
                    # k routers applied to a pristine packet with TTL > k is
                    # exactly k TTL decrements: headers stay valid at every
                    # hop (auto-computed fields are self-consistent) and the
                    # TTL cannot expire mid-run, so no drops, no ICMP, and
                    # the single clone below is byte-identical to hop-by-hop.
                    j = i + step
                    run = 1
                    while 0 <= j < count and type(elements[j]) is RouterHop:
                        run += 1
                        j += step
                    if current.ttl > run:
                        current = current.decremented(run)
                        i = j
                        continue
                ctx.index = i
                outputs = element.process(current, direction, ctx)
                if not outputs:
                    return
                if len(outputs) > 1:
                    for extra in outputs[:-1]:
                        self._propagate(extra, direction, i + step, depth + 1)
                current = outputs[-1]
                i += step
            self._deliver_to_endpoint(current, direction, depth)
            return
        while 0 <= i < count:
            element = elements[i]
            ctx.index = i
            outputs = element.process(current, direction, ctx)
            if tracer is not None:
                tracer.emit(
                    "hop.traverse",
                    self.clock.now,
                    element=element.name,
                    dir=direction.value,
                    out=len(outputs),
                    **obs_trace.packet_fields(current),
                )
            if not outputs:
                if metrics is not None:
                    metrics.inc("netsim.hop.absorbed")
                    metrics.inc(f"netsim.hop.absorbed.{element.name}")
                return
            if metrics is not None:
                metrics.inc("netsim.hop.forwarded")
            if len(outputs) > 1:
                # An element may emit several packets (e.g. reassembly
                # flushes); all but the last recurse, the last continues.
                for extra in outputs[:-1]:
                    self._propagate(extra, direction, i + step, depth + 1)
            current = outputs[-1]
            i += step
        if tracer is not None:
            tracer.emit(
                "endpoint.deliver",
                self.clock.now,
                endpoint="server" if direction is Direction.CLIENT_TO_SERVER else "client",
                dir=direction.value,
                **obs_trace.packet_fields(current),
            )
        if metrics is not None:
            metrics.inc("netsim.packets.delivered")
        self._deliver_to_endpoint(current, direction, depth)

    def _deliver_to_endpoint(self, packet: IPPacket, direction: Direction, depth: int) -> None:
        if direction is Direction.CLIENT_TO_SERVER:
            responses = self.server_endpoint.receive(packet)
            for response in responses:
                self._propagate(
                    response,
                    Direction.SERVER_TO_CLIENT,
                    index=len(self.elements) - 1,
                    depth=depth + 1,
                )
        else:
            responses = self.client_endpoint.receive(packet)
            for response in responses:
                self._propagate(response, Direction.CLIENT_TO_SERVER, index=0, depth=depth + 1)

    def _context_for(self, element_index: int, direction: Direction, depth: int) -> TransitContext:
        """A standalone :class:`TransitContext` for one element position.

        Kept for callers that hand-drive a single element; the propagation
        loop itself uses the cheaper reusable :class:`_FrameContext`.
        """
        step = 1 if direction is Direction.CLIENT_TO_SERVER else -1

        def inject_back(injected: IPPacket) -> None:
            self._propagate(injected, direction.reversed, element_index - step, depth + 1)

        def inject_forward(injected: IPPacket) -> None:
            self._propagate(injected, direction, element_index + step, depth + 1)

        return TransitContext(
            clock=self.clock, inject_back=inject_back, inject_forward=inject_forward
        )


class _FrameContext:
    """The propagation loop's transit context: one per frame, not per hop.

    Duck-typed stand-in for :class:`TransitContext` (same ``clock`` /
    ``inject_back`` / ``inject_forward`` surface).  The owning frame updates
    ``index`` as the walk advances; elements only inject synchronously from
    ``process``, so the position is always current when it is read.
    """

    __slots__ = ("clock", "index", "_path", "_direction", "_depth", "_step")

    def __init__(self, path: Path, direction: Direction, depth: int, step: int) -> None:
        self.clock = path.clock
        self.index = 0
        self._path = path
        self._direction = direction
        self._depth = depth
        self._step = step

    def inject_back(self, injected: IPPacket) -> None:
        self._path._propagate(
            injected, self._direction.reversed, self.index - self._step, self._depth + 1
        )

    def inject_forward(self, injected: IPPacket) -> None:
        self._path._propagate(
            injected, self._direction, self.index + self._step, self._depth + 1
        )
