"""Path composition: endpoints connected through an ordered element chain.

Packets travel synchronously.  An element may inject packets back toward the
sender (ICMP Time Exceeded, censor RSTs) or forward toward the destination;
injected packets traverse the remaining elements exactly as real ones would.
"""

from __future__ import annotations

from typing import Protocol

from repro.netsim.clock import VirtualClock
from repro.netsim.element import NetworkElement, TransitContext
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.packets.flow import Direction
from repro.packets.ip import IPPacket

#: Process-wide count of packet propagations across every simulated path.
#: Monotonically increasing, never reset — benchmarks take deltas around the
#: measured section to report packets/second.
_packets_propagated_total = 0


def packets_propagated() -> int:
    """Total packets propagated across all paths since process start."""
    return _packets_propagated_total


class Endpoint(Protocol):
    """Anything that can terminate a path (client or server stack)."""

    def receive(self, packet: IPPacket) -> list[IPPacket]:
        """Accept a packet; return response packets to send back."""


class _SinkEndpoint:
    """Default endpoint that silently swallows packets."""

    def receive(self, packet: IPPacket) -> list[IPPacket]:
        return []


class Path:
    """A bidirectional chain: client endpoint ⇄ elements ⇄ server endpoint.

    Elements are ordered from the client side to the server side.  The
    endpoints are attached after construction (they usually need the path's
    clock).

    Args:
        clock: shared virtual clock.
        elements: processing stages, client side first.
        max_depth: recursion guard against response loops.
    """

    def __init__(
        self,
        clock: VirtualClock,
        elements: list[NetworkElement],
        max_depth: int = 50,
    ) -> None:
        self.clock = clock
        self.elements = list(elements)
        self.client_endpoint: Endpoint = _SinkEndpoint()
        self.server_endpoint: Endpoint = _SinkEndpoint()
        self.max_depth = max_depth

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def send_from_client(self, packet: IPPacket) -> None:
        """Inject *packet* at the client edge, traveling toward the server."""
        self._propagate(packet, Direction.CLIENT_TO_SERVER, index=0, depth=0)

    def send_from_server(self, packet: IPPacket) -> None:
        """Inject *packet* at the server edge, traveling toward the client."""
        self._propagate(
            packet, Direction.SERVER_TO_CLIENT, index=len(self.elements) - 1, depth=0
        )

    def insert_element(self, element: NetworkElement, index: int = 0) -> None:
        """Insert *element* into the chain at *index* (0 = client edge)."""
        self.elements.insert(index, element)

    def element_named(self, name: str) -> NetworkElement:
        """Look an element up by name (raises KeyError when absent)."""
        for element in self.elements:
            if element.name == name:
                return element
        raise KeyError(name)

    def reset(self) -> None:
        """Reset every element's per-flow state (between independent replays)."""
        for element in self.elements:
            element.reset()

    # ------------------------------------------------------------------
    # propagation machinery
    # ------------------------------------------------------------------
    def _propagate(self, packet: IPPacket, direction: Direction, index: int, depth: int) -> None:
        global _packets_propagated_total
        _packets_propagated_total += 1
        if depth > self.max_depth:
            raise RuntimeError("packet propagation exceeded max depth (response loop?)")
        tracer = obs_trace.TRACER
        metrics = obs_metrics.METRICS
        if metrics is not None:
            metrics.inc("netsim.packets.propagated")
        step = 1 if direction is Direction.CLIENT_TO_SERVER else -1
        current = packet
        i = index
        while 0 <= i < len(self.elements):
            element = self.elements[i]
            ctx = self._context_for(i, direction, depth)
            outputs = element.process(current, direction, ctx)
            if tracer is not None:
                tracer.emit(
                    "hop.traverse",
                    self.clock.now,
                    element=element.name,
                    dir=direction.value,
                    out=len(outputs),
                    **obs_trace.packet_fields(current),
                )
            if not outputs:
                if metrics is not None:
                    metrics.inc("netsim.hop.absorbed")
                    metrics.inc(f"netsim.hop.absorbed.{element.name}")
                return
            if metrics is not None:
                metrics.inc("netsim.hop.forwarded")
            # An element may emit several packets (e.g. reassembly flushes);
            # all but the last recurse, the last continues the loop.
            for extra in outputs[:-1]:
                self._propagate(extra, direction, i + step, depth + 1)
            current = outputs[-1]
            i += step
        if tracer is not None:
            tracer.emit(
                "endpoint.deliver",
                self.clock.now,
                endpoint="server" if direction is Direction.CLIENT_TO_SERVER else "client",
                dir=direction.value,
                **obs_trace.packet_fields(current),
            )
        if metrics is not None:
            metrics.inc("netsim.packets.delivered")
        self._deliver_to_endpoint(current, direction, depth)

    def _deliver_to_endpoint(self, packet: IPPacket, direction: Direction, depth: int) -> None:
        if direction is Direction.CLIENT_TO_SERVER:
            responses = self.server_endpoint.receive(packet)
            for response in responses:
                self._propagate(
                    response,
                    Direction.SERVER_TO_CLIENT,
                    index=len(self.elements) - 1,
                    depth=depth + 1,
                )
        else:
            responses = self.client_endpoint.receive(packet)
            for response in responses:
                self._propagate(response, Direction.CLIENT_TO_SERVER, index=0, depth=depth + 1)

    def _context_for(self, element_index: int, direction: Direction, depth: int) -> TransitContext:
        step = 1 if direction is Direction.CLIENT_TO_SERVER else -1

        def inject_back(injected: IPPacket) -> None:
            self._propagate(injected, direction.reversed, element_index - step, depth + 1)

        def inject_forward(injected: IPPacket) -> None:
            self._propagate(injected, direction, element_index + step, depth + 1)

        return TransitContext(
            clock=self.clock, inject_back=inject_back, inject_forward=inject_forward
        )
