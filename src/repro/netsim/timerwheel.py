"""Hierarchical timer wheel over the virtual clock.

Replaces "walk every flow on every packet and compare its idle time against
the flush timeout" with a classic hashed-and-hierarchical timer wheel: a
timer costs O(1) to schedule and cancel, and advancing the wheel touches
only the buckets the clock actually crossed, so a packet's expiry sweep is
amortized O(timers fired) instead of O(flows tracked).

Layout: ``levels`` wheels of ``slots`` buckets each.  Level 0 buckets span
one ``tick``; each higher level's buckets span ``slots`` times the level
below.  A timer lands in the coarsest level whose resolution still
separates it from *now*, and cascades down a level each time its coarse
bucket expires, reaching level 0 in the tick it is actually due.

Determinism contract (the engine's flush ordering depends on it):

* :meth:`advance` returns due payloads sorted by ``(deadline, schedule
  sequence)`` — wall-deadline order with FIFO tie-breaking, independent of
  bucket hashing.
* The wheel never runs backwards.  Virtual clocks in tests are per-driver
  and may restart at zero; an ``advance`` into the past is a no-op and a
  timer scheduled before the wheel's current time is *overdue*: it fires on
  the next advance (the caller re-checks its exact condition and may
  reschedule, which is how lazy rescheduling degrades gracefully to the old
  per-packet scan for clock-regressed flows).
* Large clock jumps (virtual clocks leap hours) short-circuit: when the
  jump exceeds the wheel's total span, every pending timer due by *now* is
  drained directly rather than stepping tick by tick.
"""

from __future__ import annotations

from typing import Any, Iterator

#: Default tick resolution in (virtual) seconds.
DEFAULT_TICK = 0.5

#: Default buckets per level.
DEFAULT_SLOTS = 64

#: Default hierarchy depth.  3 levels x 64 slots x 0.5 s tick spans ~36 h,
#: far beyond any flush timeout the paper observed.
DEFAULT_LEVELS = 3


class TimerWheel:
    """A hierarchical timer wheel with deterministic fire ordering."""

    __slots__ = (
        "tick",
        "slots",
        "levels",
        "_wheel",
        "_ticks",
        "_timers",
        "_overdue",
        "_next_id",
        "_next_seq",
        "pending",
        "fired",
        "cascades",
    )

    def __init__(
        self,
        tick: float = DEFAULT_TICK,
        slots: int = DEFAULT_SLOTS,
        levels: int = DEFAULT_LEVELS,
        start: float = 0.0,
    ) -> None:
        if tick <= 0:
            raise ValueError("tick must be positive")
        if slots < 2 or levels < 1:
            raise ValueError("need at least 2 slots and 1 level")
        self.tick = tick
        self.slots = slots
        self.levels = levels
        self._wheel: list[list[list[int]]] = [
            [[] for _ in range(slots)] for _ in range(levels)
        ]
        self._ticks = self._tick_of(start)  # current absolute tick count
        #: timer id -> [deadline, seq, payload]; cancelled ids are removed
        #: here and lazily skipped when their bucket drains.
        self._timers: dict[int, tuple[float, int, Any]] = {}
        self._overdue: list[int] = []  # scheduled at/before the current time
        self._next_id = 0
        self._next_seq = 0
        self.pending = 0
        self.fired = 0
        self.cascades = 0

    # ------------------------------------------------------------------
    # time plumbing
    # ------------------------------------------------------------------
    def _tick_of(self, when: float) -> int:
        return int(when / self.tick)

    @property
    def now(self) -> float:
        """The wheel's current time (tick-quantized, monotonic)."""
        return self._ticks * self.tick

    def span(self) -> float:
        """Total time the hierarchy can place without wrapping."""
        return self.tick * (self.slots ** self.levels)

    def __len__(self) -> int:
        return len(self._timers)

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def _place(self, timer_id: int, deadline: float) -> None:
        delta_ticks = self._tick_of(deadline) - self._ticks
        if delta_ticks <= 0:
            self._overdue.append(timer_id)
            return
        for level in range(self.levels):
            level_span = self.slots ** (level + 1)
            if delta_ticks < level_span or level == self.levels - 1:
                resolution = self.slots ** level
                slot = (self._ticks + delta_ticks) // resolution % self.slots
                self._wheel[level][slot].append(timer_id)
                return

    def schedule(self, deadline: float, payload: Any) -> int:
        """Register *payload* to fire once the wheel advances past *deadline*.

        Returns a timer id for :meth:`cancel`.  Deadlines at or before the
        wheel's current time are overdue and fire on the next advance.
        """
        timer_id = self._next_id
        self._next_id += 1
        self._timers[timer_id] = (deadline, self._next_seq, payload)
        self._next_seq += 1
        self.pending += 1
        self._place(timer_id, deadline)
        return timer_id

    def cancel(self, timer_id: int) -> bool:
        """Forget a timer; True when it was still pending.

        O(1): the id is dropped from the live map and its bucket entry is
        skipped when the bucket drains.
        """
        if self._timers.pop(timer_id, None) is None:
            return False
        self.pending -= 1
        return True

    # ------------------------------------------------------------------
    # advancing
    # ------------------------------------------------------------------
    def _drain_bucket(self, level: int, slot: int, due: list[tuple[float, int, Any]], now: float) -> None:
        """Move a bucket's live timers into *due* or re-place the early ones.

        The bucket is swapped out before draining: a timer whose deadline
        lies beyond the wheel's total span re-places into the *same*
        coarsest-level slot it came from (it must wait a full revolution),
        and that re-place has to land in the fresh list — not extend the
        list under iteration.
        """
        bucket = self._wheel[level][slot]
        if not bucket:
            return
        self._wheel[level][slot] = []
        for timer_id in bucket:
            timer = self._timers.get(timer_id)
            if timer is None:
                continue  # cancelled
            deadline, seq, payload = timer
            if deadline <= now:
                del self._timers[timer_id]
                due.append((deadline, seq, payload))
            else:
                # Cascaded from a coarser level; lands nearer its deadline.
                self.cascades += 1
                self._place(timer_id, deadline)

    def _drain_all(self, now: float) -> list[tuple[float, int, Any]]:
        """Clock jumped past the whole span: inspect everything once."""
        due: list[tuple[float, int, Any]] = []
        survivors: list[tuple[int, float]] = []
        for timer_id, (deadline, seq, payload) in self._timers.items():
            if deadline <= now:
                due.append((deadline, seq, payload))
            else:
                survivors.append((timer_id, deadline))
        for level in self._wheel:
            for bucket in level:
                bucket.clear()
        self._overdue.clear()
        self._timers = {tid: self._timers[tid] for tid, _deadline in survivors}
        self._ticks = self._tick_of(now)
        for tid, deadline in survivors:
            self._place(tid, deadline)
        return due

    def advance(self, now: float) -> list[Any]:
        """Advance to *now*; return every due payload in deterministic order.

        Payloads come back sorted by ``(deadline, schedule sequence)``.
        Advancing into the past only drains the overdue list.
        """
        due: list[tuple[float, int, Any]] = []
        if self._overdue:
            keep: list[int] = []
            for timer_id in self._overdue:
                timer = self._timers.get(timer_id)
                if timer is None:
                    continue  # cancelled
                if timer[0] <= now:
                    del self._timers[timer_id]
                    due.append(timer)
                else:
                    # Quantization or a clock regression placed it here
                    # before its wall deadline; hold until actually due.
                    keep.append(timer_id)
            self._overdue = keep
        target = self._tick_of(now)
        if target > self._ticks:
            if target - self._ticks >= self.slots ** self.levels:
                due.extend(self._drain_all(now))
            else:
                while self._ticks < target:
                    self._ticks += 1
                    self._drain_bucket(0, self._ticks % self.slots, due, now)
                    # Cascade coarser levels on their boundaries.
                    ticks = self._ticks
                    for level in range(1, self.levels):
                        resolution = self.slots ** level
                        if ticks % resolution != 0:
                            break
                        self._drain_bucket(level, ticks // resolution % self.slots, due, now)
        if not due:
            return []
        due.sort(key=lambda t: (t[0], t[1]))
        self.pending -= len(due)
        self.fired += len(due)
        return [payload for _deadline, _seq, payload in due]

    def drain(self) -> Iterator[Any]:
        """Every pending payload in (deadline, seq) order; empties the wheel."""
        timers = sorted(self._timers.values(), key=lambda t: (t[0], t[1]))
        self._timers.clear()
        self._overdue.clear()
        for level in self._wheel:
            for bucket in level:
                bucket.clear()
        self.pending = 0
        for _deadline, _seq, payload in timers:
            yield payload
