"""Router hops: TTL decrement, expiry and basic IP header validation.

The TTL-limited evasion techniques depend on routers decrementing TTL and
emitting ICMP Time Exceeded when it reaches zero — that ICMP is also what
lib·erate's localization phase uses to count hops to the middlebox.
"""

from __future__ import annotations

import zlib

from repro.netsim.element import NetworkElement, TransitContext
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.packets.flow import Direction
from repro.packets.icmp import icmp_time_exceeded
from repro.packets.ip import IPPacket


class RouterHop(NetworkElement):
    """A router that decrements TTL and optionally validates IP headers.

    Args:
        name: label used in diagnostics.
        validate_ip_header: when True the router drops packets with an
            invalid version, inconsistent IHL/total-length, or a bad IP
            header checksum — behaviour we observed from the testbed router
            and, more aggressively, from operational networks.
        send_time_exceeded: emit ICMP Time Exceeded when TTL expires.
    """

    def __init__(
        self,
        name: str = "router",
        validate_ip_header: bool = True,
        send_time_exceeded: bool = True,
    ) -> None:
        self.name = name
        self.validate_ip_header = validate_ip_header
        self.send_time_exceeded = send_time_exceeded
        self.dropped: list[IPPacket] = []
        self.drop_reasons: dict[str, int] = {}

    def process(
        self, packet: IPPacket, direction: Direction, ctx: TransitContext
    ) -> list[IPPacket]:
        """Decrement TTL, drop expired/malformed packets, forward the rest."""
        if self.validate_ip_header:
            # Pristine fast path: auto-computed IHL/length/checksum are
            # self-consistent by construction, so only crafted overrides
            # need the full predicate walk.
            if (
                packet.version != 4
                or packet.ihl is not None
                or packet.total_length is not None
                or packet.checksum is not None
            ) and not self._header_acceptable(packet):
                self._drop(packet, "bad-header", ctx)
                return []
        if packet.ttl <= 1:
            self._drop(packet, "ttl-expired", ctx)
            if self.send_time_exceeded:
                original = packet.to_bytes()[:28]
                reply = IPPacket(
                    src=self._router_address(packet),
                    dst=packet.src,
                    transport=icmp_time_exceeded(original),
                    ttl=64,
                )
                if obs_trace.TRACER is not None:
                    obs_trace.TRACER.emit(
                        "hop.icmp_time_exceeded",
                        ctx.clock.now,
                        element=self.name,
                        **obs_trace.packet_fields(packet),
                    )
                ctx.inject_back(reply)
            return []
        return [packet.decremented()]

    def _drop(self, packet: IPPacket, reason: str, ctx: TransitContext) -> None:
        self.dropped.append(packet)
        self.drop_reasons[reason] = self.drop_reasons.get(reason, 0) + 1
        if obs_trace.TRACER is not None:
            obs_trace.TRACER.emit(
                "hop.drop",
                ctx.clock.now,
                element=self.name,
                reason=reason,
                **obs_trace.packet_fields(packet),
            )
        if obs_metrics.METRICS is not None:
            obs_metrics.METRICS.inc("netsim.packets.dropped")
            obs_metrics.METRICS.inc(f"netsim.packets.dropped.{reason}")

    def _header_acceptable(self, packet: IPPacket) -> bool:
        return (
            packet.has_valid_version()
            and packet.has_valid_ihl()
            and packet.has_valid_total_length()
            and packet.has_valid_checksum()
        )

    def _router_address(self, packet: IPPacket) -> str:
        # A synthetic address unique-ish per router name, good enough for
        # traceroute-style hop counting.  CRC32 (not hash()) so the address
        # is identical across interpreter runs — traces stay diffable.
        return f"198.51.100.{(zlib.crc32(self.name.encode()) % 250) + 1}"

    def reset(self) -> None:
        """Forget dropped-packet diagnostics."""
        self.dropped.clear()
        self.drop_reasons.clear()
