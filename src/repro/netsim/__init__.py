"""Virtual-clock network simulator.

A :class:`~repro.netsim.path.Path` connects a client endpoint to a server
endpoint through an ordered list of :class:`~repro.netsim.element.NetworkElement`
instances — router hops, malformed-packet filters, DPI middleboxes and
token-bucket shapers.  Packets are processed synchronously; time only moves
when an element (or the replay driver) advances the shared
:class:`~repro.netsim.clock.VirtualClock`.
"""

from repro.netsim.clock import VirtualClock
from repro.netsim.element import NetworkElement, TransitContext
from repro.netsim.filters import FilterPolicy, MalformedPacketFilter, TCPChecksumNormalizer
from repro.netsim.hop import RouterHop
from repro.netsim.latency import LatencyElement
from repro.netsim.path import Path
from repro.netsim.reassembler import FragmentReassembler
from repro.netsim.scheduler import EventScheduler, event_core_enabled, use_event_core
from repro.netsim.shaper import PolicyState, TokenBucket, TokenBucketShaper

__all__ = [
    "VirtualClock",
    "NetworkElement",
    "TransitContext",
    "EventScheduler",
    "event_core_enabled",
    "use_event_core",
    "FilterPolicy",
    "MalformedPacketFilter",
    "TCPChecksumNormalizer",
    "RouterHop",
    "LatencyElement",
    "Path",
    "FragmentReassembler",
    "PolicyState",
    "TokenBucket",
    "TokenBucketShaper",
]
