"""Bandwidth modeling: a base link plus policy-driven throttling.

Differentiation policies like AT&T Stream Saver (1.5 Mbps for classified
video) are enforced here: the DPI middlebox marks a flow for throttling in a
shared :class:`PolicyState`, and this shaper applies a token bucket to marked
flows.  Unmarked flows see only the base link rate.  Transmission time is
charged to the shared virtual clock, so measured goodput over virtual time is
the differentiation signal the detection phase reads.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.netsim.clock import VirtualClock
from repro.netsim.element import NetworkElement, TransitContext
from repro.packets.flow import Direction, FiveTuple
from repro.packets.ip import IPPacket


@dataclass
class TokenBucket:
    """A token bucket charging transmission delay to a virtual clock.

    Attributes:
        rate_bps: sustained rate in bits per second.
        burst_bytes: bucket depth in bytes.
    """

    rate_bps: float
    burst_bytes: float = 16_000.0

    def __post_init__(self) -> None:
        if self.rate_bps <= 0:
            raise ValueError("rate must be positive")
        self._tokens = self.burst_bytes
        self._last = 0.0

    def consume(self, size_bytes: int, clock: VirtualClock) -> float:
        """Charge *size_bytes*; advance the clock if the bucket must refill.

        Returns the delay (seconds) that was charged.
        """
        rate_bytes = self.rate_bps / 8.0
        # Inlined _refill: this runs once per packet per shaper.
        now = clock.now
        elapsed = now - self._last
        tokens = self._tokens + elapsed * rate_bytes if elapsed > 0.0 else self._tokens
        if tokens > self.burst_bytes:
            tokens = self.burst_bytes
        self._last = now
        if tokens >= size_bytes:
            self._tokens = tokens - size_bytes
            return 0.0
        self._tokens = tokens
        deficit = size_bytes - tokens
        delay = deficit / rate_bytes
        clock.advance(delay)
        now = clock.now
        elapsed = now - self._last
        if elapsed > 0.0:
            tokens = min(self.burst_bytes, tokens + elapsed * rate_bytes)
        self._last = now
        self._tokens = max(tokens - size_bytes, 0.0)
        return delay

    def _refill(self, now: float, rate_bytes: float) -> None:
        elapsed = max(now - self._last, 0.0)
        self._tokens = min(self.burst_bytes, self._tokens + elapsed * rate_bytes)
        self._last = now

    def reset(self) -> None:
        """Restore a full bucket."""
        self._tokens = self.burst_bytes
        self._last = 0.0


@dataclass
class PolicyState:
    """Shared marks the middlebox sets and path elements act upon.

    Attributes:
        throttled_flows: normalized flow keys → throttle rate in bps.
        zero_rated_flows: normalized flow keys exempt from the data quota.
        blocked_endpoints: (server_ip, server_port) pairs under residual
            blocking (the GFC's server:port blocking behaviour, §6.5).
    """

    throttled_flows: dict[FiveTuple, float] = field(default_factory=dict)
    zero_rated_flows: set[FiveTuple] = field(default_factory=set)
    blocked_endpoints: set[tuple[str, int]] = field(default_factory=set)

    def throttle(self, key: FiveTuple, rate_bps: float) -> None:
        """Mark *key* (normalized) for throttling at *rate_bps*."""
        self.throttled_flows[key.normalized()] = rate_bps

    def zero_rate(self, key: FiveTuple) -> None:
        """Mark *key* (normalized) as zero-rated."""
        self.zero_rated_flows.add(key.normalized())

    def throttle_rate_for(self, key: FiveTuple | None) -> float | None:
        """The throttle rate for a flow, or None when unmarked."""
        if key is None:
            return None
        return self.throttled_flows.get(key.normalized())

    def is_zero_rated(self, key: FiveTuple | None) -> bool:
        """True when the flow is marked zero-rated."""
        return key is not None and key.normalized() in self.zero_rated_flows

    def reset(self) -> None:
        """Clear all marks."""
        self.throttled_flows.clear()
        self.zero_rated_flows.clear()
        self.blocked_endpoints.clear()


class TokenBucketShaper(NetworkElement):
    """Applies base-link and per-flow throttle rates to passing traffic."""

    def __init__(
        self,
        policy_state: PolicyState,
        base_rate_bps: float = 12_000_000.0,
        name: str = "shaper",
    ) -> None:
        self.name = name
        self.policy_state = policy_state
        self.base_bucket = TokenBucket(rate_bps=base_rate_bps, burst_bytes=64_000.0)
        self._flow_buckets: dict[FiveTuple, TokenBucket] = {}

    def process(
        self, packet: IPPacket, direction: Direction, ctx: TransitContext
    ) -> list[IPPacket]:
        """Charge the packet's transmission time, throttled when marked."""
        size = packet.wire_length()
        # Flow keys are only needed to look up throttle marks; with none
        # set (the common case) every packet takes the base link.
        throttled = self.policy_state.throttled_flows
        if throttled:
            key = FiveTuple.of(packet)
            normalized = None if key is None else key.normalized()
            rate = None if normalized is None else throttled.get(normalized)
            if rate is not None:
                bucket = self._flow_buckets.get(normalized)
                if bucket is None or bucket.rate_bps != rate:
                    bucket = TokenBucket(rate_bps=rate, burst_bytes=8_000.0)
                    bucket._last = ctx.clock.now
                    self._flow_buckets[normalized] = bucket
                bucket.consume(size, ctx.clock)
                return [packet]
        # Inlined base-bucket fast path: the base link rarely saturates, so
        # most packets only need a refill-and-subtract with no delay.
        bucket = self.base_bucket
        clock = ctx.clock
        now = clock.now
        elapsed = now - bucket._last
        tokens = bucket._tokens
        if elapsed > 0.0:
            tokens += elapsed * (bucket.rate_bps / 8.0)
            if tokens > bucket.burst_bytes:
                tokens = bucket.burst_bytes
        bucket._last = now
        if tokens >= size:
            bucket._tokens = tokens - size
        else:
            bucket._tokens = tokens
            bucket.consume(size, clock)  # recomputes elapsed=0, charges delay
        return [packet]

    def reset(self) -> None:
        """Drop per-flow buckets and refill the base bucket."""
        self._flow_buckets.clear()
        self.base_bucket.reset()
