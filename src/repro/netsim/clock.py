"""Virtual time.

All timing-sensitive behaviour — middlebox flush timeouts, the GFC's
time-of-day effects (Figure 4), throughput measurement — reads this clock.
Time never advances implicitly; tests and the replay driver move it.
"""

from __future__ import annotations

SECONDS_PER_HOUR = 3600.0
SECONDS_PER_DAY = 24 * SECONDS_PER_HOUR


class VirtualClock:
    """A monotonically advancing simulated clock.

    Attributes:
        now: current simulated time in seconds since the simulation epoch.
    """

    def __init__(self, start: float = 0.0) -> None:
        if start < 0:
            raise ValueError("clock cannot start before the epoch")
        self.now = float(start)

    def advance(self, seconds: float) -> float:
        """Move time forward by *seconds* (must be non-negative); returns now."""
        if seconds < 0:
            raise ValueError("time cannot move backwards")
        self.now += seconds
        return self.now

    def sleep(self, seconds: float) -> float:
        """Alias of :meth:`advance`, reads naturally in replay code."""
        return self.advance(seconds)

    @property
    def hour_of_day(self) -> float:
        """The local hour of day in [0, 24) — drives time-of-day models."""
        return (self.now % SECONDS_PER_DAY) / SECONDS_PER_HOUR

    def at_hour(self, hour: float) -> None:
        """Jump forward to the next occurrence of *hour* (0-24) local time."""
        if not 0 <= hour < 24:
            raise ValueError("hour must be in [0, 24)")
        target = hour * SECONDS_PER_HOUR
        today = self.now % SECONDS_PER_DAY
        delta = target - today
        if delta < 0:
            delta += SECONDS_PER_DAY
        self.advance(delta)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"VirtualClock(now={self.now:.3f})"
