"""Propagation latency and policy-driven delay (the paper's latency signal).

The differentiation-detection methodology the paper builds on ([32])
observes "bandwidth limitations, latency differences, content modification,
blocking, and zero-rating".  The token-bucket shaper covers bandwidth; this
element covers latency: a fixed per-packet propagation delay, plus an extra
penalty for flows the middlebox marked (de-prioritization queueing).
"""

from __future__ import annotations

from repro.netsim.element import NetworkElement, TransitContext
from repro.netsim.shaper import PolicyState
from repro.packets.flow import Direction, FiveTuple
from repro.packets.ip import IPPacket


class LatencyElement(NetworkElement):
    """Charges propagation delay to the virtual clock per traversing packet.

    Args:
        base_delay: seconds added for every packet.
        deprioritized_extra: additional seconds for throttle-marked flows
            (models a low-priority queue).
        policy_state: where marks live (None disables the penalty).
    """

    def __init__(
        self,
        base_delay: float = 0.005,
        deprioritized_extra: float = 0.0,
        policy_state: PolicyState | None = None,
        name: str = "latency",
    ) -> None:
        if base_delay < 0 or deprioritized_extra < 0:
            raise ValueError("delays cannot be negative")
        self.name = name
        self.base_delay = base_delay
        self.deprioritized_extra = deprioritized_extra
        self.policy_state = policy_state
        self.packets_delayed = 0

    def process(
        self, packet: IPPacket, direction: Direction, ctx: TransitContext
    ) -> list[IPPacket]:
        """Advance the clock by the packet's queueing + propagation delay."""
        delay = self.base_delay
        if self.policy_state is not None and self.deprioritized_extra > 0:
            key = FiveTuple.of(packet)
            if self.policy_state.throttle_rate_for(key) is not None:
                delay += self.deprioritized_extra
        if delay > 0:
            ctx.clock.advance(delay)
            self.packets_delayed += 1
        return [packet]

    def reset(self) -> None:
        """Reset the delay counter."""
        self.packets_delayed = 0
