"""Raw packet clients — the sending half lib·erate controls.

lib·erate runs as a transparent proxy with raw-socket access, so the client
side here is deliberately *not* a well-behaved kernel stack: it crafts every
segment itself, can freeze arbitrary header fields, reorder, fragment, and
insert inert packets.  Received packets are gathered by a
:class:`ClientCollector` for inspection (RST detection, block pages, ICMP
Time Exceeded during localization).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.netsim.path import Path
from repro.packets.icmp import ICMP_TIME_EXCEEDED
from repro.packets.ip import IPPacket
from repro.packets.tcp import TCPFlags, TCPSegment
from repro.packets.udp import UDPDatagram

CLIENT_ISN = 7_000
MTU_PAYLOAD = 1460


class ClientCollector:
    """The client-side endpoint: records everything arriving at the client.

    When constructed with a clock, each arrival is timestamped (used for
    throughput measurement).
    """

    def __init__(self, clock=None) -> None:
        self.packets: list[IPPacket] = []
        self.arrival_times: list[float] = []
        self._clock = clock

    def receive(self, packet: IPPacket) -> list[IPPacket]:
        """Record the packet; a raw client never auto-responds."""
        self.packets.append(packet)
        self.arrival_times.append(self._clock.now if self._clock is not None else 0.0)
        return []

    def timed_packets(self) -> list[tuple[float, IPPacket]]:
        """(arrival time, packet) pairs in arrival order."""
        return list(zip(self.arrival_times, self.packets))

    def rst_packets(self) -> list[IPPacket]:
        """All TCP RSTs received."""
        return [
            p
            for p in self.packets
            if p.tcp is not None and p.tcp.flags & TCPFlags.RST
        ]

    def icmp_time_exceeded(self) -> list[IPPacket]:
        """All ICMP Time Exceeded messages received."""
        return [
            p
            for p in self.packets
            if p.icmp is not None and p.icmp.icmp_type == ICMP_TIME_EXCEEDED
        ]

    def server_stream(self, server: str, server_port: int, client_port: int) -> bytes:
        """Reassemble (by sequence number) the data the server sent back."""
        chunks: dict[int, bytes] = {}
        for p in self.packets:
            tcp = p.tcp
            if tcp is None or p.src != server:
                continue
            if tcp.sport != server_port or tcp.dport != client_port:
                continue
            if tcp.payload:
                chunks.setdefault(tcp.seq, tcp.payload)
        stream = bytearray()
        for seq in sorted(chunks):
            stream.extend(chunks[seq])
        return bytes(stream)

    def udp_responses(self, server: str, server_port: int, client_port: int) -> list[bytes]:
        """UDP payloads the server sent back, in arrival order."""
        out = []
        for p in self.packets:
            udp = p.udp
            if udp is None or p.src != server:
                continue
            if udp.sport != server_port or udp.dport != client_port:
                continue
            out.append(udp.payload)
        return out

    def reset(self) -> None:
        """Forget everything received."""
        self.packets.clear()


@dataclass
class SegmentPlan:
    """Instructions for emitting one crafted TCP data packet.

    ``seq`` of None means "the connection's next in-order sequence number";
    the remaining fields override header values (None = correct value).
    """

    payload: bytes = b""
    seq: int | None = None
    advances_seq: bool = True  # inert packets repeat a seq without advancing it
    ttl: int | None = None
    flags: TCPFlags | None = None
    tcp_checksum: int | None = None
    data_offset: int | None = None
    ip_version: int | None = None
    ip_ihl: int | None = None
    ip_total_length_delta: int | None = None
    ip_protocol: int | None = None
    ip_checksum: int | None = None
    ip_options: bytes = b""
    pause_before: float = 0.0


def packet_from_plan(
    plan: SegmentPlan,
    src: str,
    dst: str,
    sport: int,
    dport: int,
    default_seq: int,
    ack: int,
    default_ttl: int = 64,
) -> IPPacket:
    """Materialize a :class:`SegmentPlan` into a concrete packet.

    Shared by the raw client and by harnesses that need the crafted packet
    without a live connection (e.g. the per-OS server-response matrix).
    """
    seq = default_seq if plan.seq is None else plan.seq
    segment = TCPSegment(
        sport=sport,
        dport=dport,
        seq=seq,
        ack=ack,
        flags=plan.flags if plan.flags is not None else TCPFlags.ACK | TCPFlags.PSH,
        payload=plan.payload,
        checksum=plan.tcp_checksum,
        data_offset=plan.data_offset,
    )
    packet = IPPacket(
        src=src,
        dst=dst,
        transport=segment,
        ttl=plan.ttl if plan.ttl is not None else default_ttl,
        options=plan.ip_options,
    )
    if plan.ip_version is not None:
        packet.version = plan.ip_version
    if plan.ip_ihl is not None:
        packet.ihl = plan.ip_ihl
    if plan.ip_total_length_delta is not None:
        packet.total_length = packet.wire_length() + plan.ip_total_length_delta
    if plan.ip_protocol is not None:
        packet.protocol = plan.ip_protocol
    if plan.ip_checksum is not None:
        packet.checksum = plan.ip_checksum
    return packet


class RawTCPClient:
    """A raw TCP sender bound to a simulated path.

    Args:
        path: the network path to send over (this client installs itself as
            the path's client endpoint).
        src / dst: client and server addresses.
        sport / dport: client and server ports.
        ttl: default TTL for well-formed packets.
    """

    def __init__(
        self,
        path: Path,
        src: str,
        dst: str,
        sport: int = 40_000,
        dport: int = 80,
        ttl: int = 64,
    ) -> None:
        self.path = path
        self.src = src
        self.dst = dst
        self.sport = sport
        self.dport = dport
        self.ttl = ttl
        self.collector = ClientCollector(clock=path.clock)
        path.client_endpoint = self.collector
        self.next_seq = CLIENT_ISN
        self.server_ack = 0  # what we acknowledge of the server's stream
        self.established = False

    # ------------------------------------------------------------------
    # connection management
    # ------------------------------------------------------------------
    def connect(self) -> bool:
        """Perform the three-way handshake; True on success."""
        syn = TCPSegment(
            sport=self.sport, dport=self.dport, seq=self.next_seq, flags=TCPFlags.SYN
        )
        self.path.send_from_client(IPPacket(src=self.src, dst=self.dst, transport=syn, ttl=self.ttl))
        synack = self._find_synack()
        if synack is None:
            return False
        self.next_seq += 1
        self.server_ack = (synack.tcp.seq + 1) & 0xFFFFFFFF  # type: ignore[union-attr]
        ack = TCPSegment(
            sport=self.sport,
            dport=self.dport,
            seq=self.next_seq,
            ack=self.server_ack,
            flags=TCPFlags.ACK,
        )
        self.path.send_from_client(IPPacket(src=self.src, dst=self.dst, transport=ack, ttl=self.ttl))
        self.established = True
        return True

    def _find_synack(self) -> IPPacket | None:
        for p in reversed(self.collector.packets):
            tcp = p.tcp
            if (
                tcp is not None
                and tcp.flags & TCPFlags.SYN
                and tcp.flags & TCPFlags.ACK
                and tcp.sport == self.dport
                and tcp.dport == self.sport
            ):
                return p
        return None

    def close(self) -> None:
        """Send a FIN for the current connection."""
        fin = TCPSegment(
            sport=self.sport,
            dport=self.dport,
            seq=self.next_seq,
            ack=self.server_ack,
            flags=TCPFlags.FIN | TCPFlags.ACK,
        )
        self.next_seq += 1
        self.path.send_from_client(IPPacket(src=self.src, dst=self.dst, transport=fin, ttl=self.ttl))

    def abort(self) -> None:
        """Send a RST for the current connection (full TTL)."""
        self.send_rst()

    def send_rst(self, ttl: int | None = None, seq: int | None = None) -> None:
        """Send a RST, optionally TTL-limited so only the middlebox sees it."""
        rst = TCPSegment(
            sport=self.sport,
            dport=self.dport,
            seq=self.next_seq if seq is None else seq,
            ack=self.server_ack,
            flags=TCPFlags.RST,
        )
        packet = IPPacket(
            src=self.src,
            dst=self.dst,
            transport=rst,
            ttl=self.ttl if ttl is None else ttl,
        )
        self.path.send_from_client(packet)

    # ------------------------------------------------------------------
    # data transmission
    # ------------------------------------------------------------------
    def send_plan(self, plan: SegmentPlan) -> IPPacket:
        """Craft and send one packet per *plan*; returns the packet sent."""
        if plan.pause_before > 0:
            self.path.clock.advance(plan.pause_before)
        packet = packet_from_plan(
            plan,
            src=self.src,
            dst=self.dst,
            sport=self.sport,
            dport=self.dport,
            default_seq=self.next_seq,
            ack=self.server_ack,
            default_ttl=self.ttl,
        )
        if plan.seq is None and plan.advances_seq:
            self.next_seq = (self.next_seq + len(plan.payload)) & 0xFFFFFFFF
        self.path.send_from_client(packet)
        return packet

    def send_payload(self, payload: bytes, mss: int = MTU_PAYLOAD) -> None:
        """Send *payload* as ordinary in-order, MSS-sized segments."""
        for offset in range(0, len(payload), mss):
            self.send_plan(SegmentPlan(payload=payload[offset : offset + mss]))
        if not payload:
            self.send_plan(SegmentPlan(payload=b""))

    def send_raw(self, packet: IPPacket) -> None:
        """Send an arbitrary pre-built packet."""
        self.path.send_from_client(packet)

    # ------------------------------------------------------------------
    # observations
    # ------------------------------------------------------------------
    def server_stream(self) -> bytes:
        """Bytes the server has sent back on this connection."""
        return self.collector.server_stream(self.dst, self.dport, self.sport)

    def received_rst(self) -> bool:
        """True when any RST for this connection arrived."""
        return any(
            p.tcp.sport == self.dport and p.tcp.dport == self.sport
            for p in self.collector.rst_packets()
        )


class RawUDPClient:
    """A raw UDP sender bound to a simulated path."""

    def __init__(
        self,
        path: Path,
        src: str,
        dst: str,
        sport: int = 41_000,
        dport: int = 3478,
        ttl: int = 64,
    ) -> None:
        self.path = path
        self.src = src
        self.dst = dst
        self.sport = sport
        self.dport = dport
        self.ttl = ttl
        self.collector = ClientCollector(clock=path.clock)
        path.client_endpoint = self.collector

    def send_datagram(
        self,
        payload: bytes,
        ttl: int | None = None,
        checksum: int | None = None,
        length_delta: int | None = None,
    ) -> IPPacket:
        """Send one datagram, optionally with a corrupted checksum/length."""
        datagram = UDPDatagram(sport=self.sport, dport=self.dport, payload=payload)
        if checksum is not None:
            datagram.checksum = checksum
        if length_delta is not None:
            datagram.length = datagram.wire_length() + length_delta
        packet = IPPacket(
            src=self.src,
            dst=self.dst,
            transport=datagram,
            ttl=self.ttl if ttl is None else ttl,
        )
        self.path.send_from_client(packet)
        return packet

    def send_raw(self, packet: IPPacket) -> None:
        """Send an arbitrary pre-built packet."""
        self.path.send_from_client(packet)

    def responses(self) -> list[bytes]:
        """UDP payloads the server sent back."""
        return self.collector.udp_responses(self.dst, self.dport, self.sport)
