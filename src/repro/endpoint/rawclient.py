"""Raw packet clients — the sending half lib·erate controls.

lib·erate runs as a transparent proxy with raw-socket access, so the client
side here is deliberately *not* a well-behaved kernel stack: it crafts every
segment itself, can freeze arbitrary header fields, reorder, fragment, and
insert inert packets.  Received packets are gathered by a
:class:`ClientCollector` for inspection (RST detection, block pages, ICMP
Time Exceeded during localization).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.netsim.path import Path
from repro.netsim.timerwheel import TimerWheel
from repro.packets.icmp import ICMP_TIME_EXCEEDED
from repro.packets.ip import IPPacket
from repro.packets.tcp import TCPFlags, TCPSegment
from repro.packets.udp import UDPDatagram

CLIENT_ISN = 7_000
MTU_PAYLOAD = 1460

# Prototypes cloned by the crafting hot path (see tcpstack for rationale).
_SEG_PROTO = TCPSegment()
_IP_PROTO = IPPacket(src="0.0.0.0", dst="0.0.0.0")
_ACK_PSH = TCPFlags.ACK | TCPFlags.PSH

#: The block-page signature differentiation detection looks for (indexed at
#: arrival by :class:`ClientCollector` so observation never rescans payloads).
BLOCK_PAGE_MARKER = b"403 Forbidden"


class ClientCollector:
    """The client-side endpoint: records everything arriving at the client.

    When constructed with a clock, each arrival is timestamped (used for
    throughput measurement).
    """

    def __init__(self, clock=None) -> None:
        self.packets: list[IPPacket] = []
        self.arrival_times: list[float] = []
        self._rsts: list[IPPacket] = []
        # TCP data index: (time, src, sport, dport, seq, payload) per
        # payload-bearing segment, so throughput sampling and stream
        # reassembly never rescan the full packet list through properties.
        self._tcp_data: list[tuple[float, str, int, int, int, bytes]] = []
        self._block_page_seen = False
        self._clock = clock

    def receive(self, packet: IPPacket) -> list[IPPacket]:
        """Record the packet; a raw client never auto-responds."""
        self.packets.append(packet)
        now = self._clock.now if self._clock is not None else 0.0
        self.arrival_times.append(now)
        # Inlined packet.tcp: this runs once per arriving packet.
        transport = packet.transport
        declared = packet.protocol
        tcp = (
            transport
            if type(transport) is TCPSegment and (declared is None or declared == 6)
            else None
        )
        if tcp is not None:
            if int(tcp.flags) & 0x04:  # RST index, see rst_packets
                self._rsts.append(packet)
            payload = tcp.payload
            if payload:
                self._tcp_data.append(
                    (now, packet.src, tcp.sport, tcp.dport, tcp.seq, payload)
                )
                if not self._block_page_seen and BLOCK_PAGE_MARKER in payload:
                    self._block_page_seen = True
        return []

    def timed_packets(self) -> list[tuple[float, IPPacket]]:
        """(arrival time, packet) pairs in arrival order."""
        return list(zip(self.arrival_times, self.packets))

    def tcp_data_samples(self, src: str) -> list[tuple[float, int]]:
        """(arrival time, payload length) for TCP data packets from *src*."""
        return [
            (t, len(payload))
            for t, source, _sport, _dport, _seq, payload in self._tcp_data
            if source == src
        ]

    def block_page_seen(self) -> bool:
        """True when any TCP payload carried the block-page signature."""
        return self._block_page_seen

    def rst_packets(self) -> list[IPPacket]:
        """All TCP RSTs received (indexed at arrival, not rescanned)."""
        return self._rsts

    def icmp_time_exceeded(self) -> list[IPPacket]:
        """All ICMP Time Exceeded messages received."""
        return [
            p
            for p in self.packets
            if p.icmp is not None and p.icmp.icmp_type == ICMP_TIME_EXCEEDED
        ]

    def server_stream(self, server: str, server_port: int, client_port: int) -> bytes:
        """Reassemble (by sequence number) the data the server sent back.

        Overlap-aware: retransmitted chunks whose boundaries differ from the
        original transmission are trimmed against what earlier sequence
        numbers already covered, so duplicates never double-count.  Gaps are
        still collapsed (the caller compares against the expected stream).
        """
        chunks: dict[int, bytes] = {}
        for _t, src, sport, dport, seq, payload in self._tcp_data:
            if src != server or sport != server_port or dport != client_port:
                continue
            existing = chunks.get(seq)
            if existing is None or len(payload) > len(existing):
                chunks[seq] = payload
        stream = bytearray()
        max_end: int | None = None
        for seq in sorted(chunks):
            payload = chunks[seq]
            if max_end is not None and seq < max_end:
                if seq + len(payload) <= max_end:
                    continue  # entirely covered already
                payload = payload[max_end - seq :]
                seq = max_end
            stream.extend(payload)
            max_end = seq + len(payload)
        return bytes(stream)

    def max_server_ack(self, server: str, server_port: int, client_port: int) -> int | None:
        """The highest cumulative ACK the server has sent us, or None."""
        best: int | None = None
        for p in self.packets:
            tcp = p.tcp
            if tcp is None or p.src != server:
                continue
            if tcp.sport != server_port or tcp.dport != client_port:
                continue
            flags = int(tcp.flags)
            if flags & 0x04 or not flags & 0x10:  # RST, or no ACK
                continue
            if best is None or tcp.ack > best:
                best = tcp.ack
        return best

    def udp_responses(self, server: str, server_port: int, client_port: int) -> list[bytes]:
        """UDP payloads the server sent back, in arrival order."""
        out = []
        for p in self.packets:
            udp = p.udp
            if udp is None or p.src != server:
                continue
            if udp.sport != server_port or udp.dport != client_port:
                continue
            out.append(udp.payload)
        return out

    def reset(self) -> None:
        """Forget everything received."""
        self.packets.clear()
        self.arrival_times.clear()
        self._rsts.clear()
        self._tcp_data.clear()
        self._block_page_seen = False


@dataclass
class SegmentPlan:
    """Instructions for emitting one crafted TCP data packet.

    ``seq`` of None means "the connection's next in-order sequence number";
    the remaining fields override header values (None = correct value).
    """

    payload: bytes = b""
    seq: int | None = None
    advances_seq: bool = True  # inert packets repeat a seq without advancing it
    ttl: int | None = None
    flags: TCPFlags | None = None
    tcp_checksum: int | None = None
    data_offset: int | None = None
    ip_version: int | None = None
    ip_ihl: int | None = None
    ip_total_length_delta: int | None = None
    ip_protocol: int | None = None
    ip_checksum: int | None = None
    ip_options: bytes = b""
    pause_before: float = 0.0


def packet_from_plan(
    plan: SegmentPlan,
    src: str,
    dst: str,
    sport: int,
    dport: int,
    default_seq: int,
    ack: int,
    default_ttl: int = 64,
) -> IPPacket:
    """Materialize a :class:`SegmentPlan` into a concrete packet.

    Shared by the raw client and by harnesses that need the crafted packet
    without a live connection (e.g. the per-OS server-response matrix).
    """
    seq = default_seq if plan.seq is None else plan.seq
    segment = _SEG_PROTO.copy(
        sport=sport,
        dport=dport,
        seq=seq,
        ack=ack,
        flags=plan.flags if plan.flags is not None else _ACK_PSH,
        payload=plan.payload,
        checksum=plan.tcp_checksum,
        data_offset=plan.data_offset,
    )
    packet = _IP_PROTO.copy(
        src=src,
        dst=dst,
        transport=segment,
        ttl=plan.ttl if plan.ttl is not None else default_ttl,
        options=plan.ip_options,
    )
    if plan.ip_version is not None:
        packet.version = plan.ip_version
    if plan.ip_ihl is not None:
        packet.ihl = plan.ip_ihl
    if plan.ip_total_length_delta is not None:
        packet.total_length = packet.wire_length() + plan.ip_total_length_delta
    if plan.ip_protocol is not None:
        packet.protocol = plan.ip_protocol
    if plan.ip_checksum is not None:
        packet.checksum = plan.ip_checksum
    return packet


def _plan_is_plain(plan: SegmentPlan) -> bool:
    """True when a plan is ordinary stream data, safe to retransmit verbatim.

    Plans that freeze header fields, limit TTL, or override flags are
    technique probes — retransmitting those would change what the middlebox
    and server observe, so they are never tracked for ARQ.
    """
    return (
        plan.ttl is None
        and plan.flags is None
        and plan.tcp_checksum is None
        and plan.data_offset is None
        and plan.ip_version is None
        and plan.ip_ihl is None
        and plan.ip_total_length_delta is None
        and plan.ip_protocol is None
        and plan.ip_checksum is None
        and not plan.ip_options
    )


class RawTCPClient:
    """A raw TCP sender bound to a simulated path.

    Args:
        path: the network path to send over (this client installs itself as
            the path's client endpoint).
        src / dst: client and server addresses.
        sport / dport: client and server ports.
        ttl: default TTL for well-formed packets.
        reliable: run lightweight ARQ on a lossy fault-injected path — SYN
            retry, tracked-data retransmission and server-stream gap repair.
            Off by default: the fault-free packet sequence is unchanged.
        max_retries: retry budget for each ARQ loop in reliable mode.
    """

    def __init__(
        self,
        path: Path,
        src: str,
        dst: str,
        sport: int = 40_000,
        dport: int = 80,
        ttl: int = 64,
        reliable: bool = False,
        max_retries: int = 4,
    ) -> None:
        self.path = path
        self.src = src
        self.dst = dst
        self.sport = sport
        self.dport = dport
        self.ttl = ttl
        self.reliable = reliable
        self.max_retries = max_retries
        self.retransmissions = 0
        self.collector = ClientCollector(clock=path.clock)
        path.client_endpoint = self.collector
        self.next_seq = CLIENT_ISN
        self.server_ack = 0  # what we acknowledge of the server's stream
        self.established = False
        self._tracked: list[tuple[int, bytes]] = []  # (seq, payload) of plain stream data

    # ------------------------------------------------------------------
    # connection management
    # ------------------------------------------------------------------
    def connect(self) -> bool:
        """Perform the three-way handshake; True on success.

        In reliable mode a lost SYN or SYN-ACK is retried (a duplicate SYN
        simply refreshes the server's half-open connection).
        """
        attempts = 1 + (self.max_retries if self.reliable else 0)
        synack = None
        for _ in range(attempts):
            syn = TCPSegment(
                sport=self.sport, dport=self.dport, seq=self.next_seq, flags=TCPFlags.SYN
            )
            self.path.send_from_client(
                IPPacket(src=self.src, dst=self.dst, transport=syn, ttl=self.ttl)
            )
            synack = self._find_synack()
            if synack is not None:
                break
            if self.reliable:
                self.retransmissions += 1
        if synack is None:
            return False
        self.next_seq += 1
        self.server_ack = (synack.tcp.seq + 1) & 0xFFFFFFFF  # type: ignore[union-attr]
        ack = TCPSegment(
            sport=self.sport,
            dport=self.dport,
            seq=self.next_seq,
            ack=self.server_ack,
            flags=TCPFlags.ACK,
        )
        self.path.send_from_client(IPPacket(src=self.src, dst=self.dst, transport=ack, ttl=self.ttl))
        self.established = True
        return True

    def _find_synack(self) -> IPPacket | None:
        for p in reversed(self.collector.packets):
            tcp = p.tcp
            if (
                tcp is not None
                and tcp.flags & TCPFlags.SYN
                and tcp.flags & TCPFlags.ACK
                and tcp.sport == self.dport
                and tcp.dport == self.sport
            ):
                return p
        return None

    def close(self) -> None:
        """Send a FIN for the current connection."""
        fin = TCPSegment(
            sport=self.sport,
            dport=self.dport,
            seq=self.next_seq,
            ack=self.server_ack,
            flags=TCPFlags.FIN | TCPFlags.ACK,
        )
        self.next_seq += 1
        self.path.send_from_client(IPPacket(src=self.src, dst=self.dst, transport=fin, ttl=self.ttl))

    def abort(self) -> None:
        """Send a RST for the current connection (full TTL)."""
        self.send_rst()

    def send_rst(self, ttl: int | None = None, seq: int | None = None) -> None:
        """Send a RST, optionally TTL-limited so only the middlebox sees it."""
        rst = TCPSegment(
            sport=self.sport,
            dport=self.dport,
            seq=self.next_seq if seq is None else seq,
            ack=self.server_ack,
            flags=TCPFlags.RST,
        )
        packet = IPPacket(
            src=self.src,
            dst=self.dst,
            transport=rst,
            ttl=self.ttl if ttl is None else ttl,
        )
        self.path.send_from_client(packet)

    # ------------------------------------------------------------------
    # data transmission
    # ------------------------------------------------------------------
    def _craft_plan(self, plan: SegmentPlan) -> IPPacket:
        """Craft the packet for *plan*, applying its clock/seq side effects."""
        if plan.pause_before > 0:
            self.path.clock.advance(plan.pause_before)
        packet = packet_from_plan(
            plan,
            src=self.src,
            dst=self.dst,
            sport=self.sport,
            dport=self.dport,
            default_seq=self.next_seq,
            ack=self.server_ack,
            default_ttl=self.ttl,
        )
        if self.reliable and plan.payload and plan.advances_seq and _plan_is_plain(plan):
            seq = self.next_seq if plan.seq is None else plan.seq
            self._tracked.append((seq, plan.payload))
        if plan.seq is None and plan.advances_seq:
            self.next_seq = (self.next_seq + len(plan.payload)) & 0xFFFFFFFF
        return packet

    def send_plan(self, plan: SegmentPlan) -> IPPacket:
        """Craft and send one packet per *plan*; returns the packet sent."""
        packet = self._craft_plan(plan)
        self.path.send_from_client(packet)
        return packet

    def send_payload(self, payload: bytes, mss: int = MTU_PAYLOAD) -> None:
        """Send *payload* as ordinary in-order, MSS-sized segments.

        All segments are crafted up front (the ack/ttl fields only depend on
        handshake state, so interleaving crafting with delivery would produce
        the same bytes) and handed to the path as one batch, which
        pre-encodes the wire bytes in a single vectorized pass.
        """
        plans = [
            SegmentPlan(payload=payload[offset : offset + mss])
            for offset in range(0, len(payload), mss)
        ]
        if not payload:
            plans = [SegmentPlan(payload=b"")]
        self.path.send_batch_from_client([self._craft_plan(plan) for plan in plans])

    def send_raw(self, packet: IPPacket) -> None:
        """Send an arbitrary pre-built packet."""
        self.path.send_from_client(packet)

    # ------------------------------------------------------------------
    # reliable-mode ARQ
    # ------------------------------------------------------------------
    def flush_unacked(self) -> int:
        """Retransmit tracked stream data the server has not acknowledged.

        Scans the collector for the server's highest cumulative ACK and
        resends every tracked segment not fully covered by it, as plain
        ACK|PSH segments (the server stack trims already-delivered prefixes).
        Returns the number of segments retransmitted.
        """
        if not self.reliable or not self._tracked:
            return 0
        resent_total = 0
        target = max(seq + len(payload) for seq, payload in self._tracked)
        # Retry rounds run on the same timer-wheel machinery as the engine's
        # flow expiry: every tracked segment is armed one RTO out, a round
        # advances the wheel, and whatever fires still-unacked is resent and
        # re-armed.  Same-deadline timers fire in schedule order, so the
        # emitted packet sequence is exactly the tracked order each round.
        rto = 1.0
        wheel = TimerWheel(tick=rto, slots=8, levels=1)
        for entry in self._tracked:
            wheel.schedule(wheel.now + rto, entry)
        for _ in range(self.max_retries):
            acked = self.collector.max_server_ack(self.dst, self.dport, self.sport) or 0
            if acked >= target:
                break
            resent = 0
            for seq, payload in wheel.advance(wheel.now + rto):
                if seq + len(payload) <= acked:
                    continue  # fully delivered: the timer is simply dropped
                segment = TCPSegment(
                    sport=self.sport,
                    dport=self.dport,
                    seq=seq,
                    ack=self.server_ack,
                    flags=TCPFlags.ACK | TCPFlags.PSH,
                    payload=payload,
                )
                self.path.send_from_client(
                    IPPacket(src=self.src, dst=self.dst, transport=segment, ttl=self.ttl)
                )
                wheel.schedule(wheel.now + rto, (seq, payload))
                resent += 1
            if not resent:
                break
            self.retransmissions += resent
            resent_total += resent
        return resent_total

    def repair_server_stream(self, expected_len: int) -> int:
        """Ask the server to retransmit missing response bytes.

        Finds the first gap in the collected server stream and sends a pure
        duplicate ACK for it; a retransmission-enabled server resends the
        tail from that point.  Repeats until the stream reaches
        *expected_len* or the retry budget/stall limit is hit.  Returns the
        number of repair ACKs sent.
        """
        if not self.reliable or expected_len <= 0:
            return 0
        base = self.server_ack
        repairs = 0
        stalls = 0
        previous_extent = -1
        for _ in range(self.max_retries * 2):
            extent = self._contiguous_extent(base)
            if extent - base >= expected_len:
                break
            if extent <= previous_extent:
                stalls += 1
                if stalls >= 2:
                    break
            else:
                stalls = 0
            previous_extent = extent
            dup_ack = TCPSegment(
                sport=self.sport,
                dport=self.dport,
                seq=self.next_seq,
                ack=extent,
                flags=TCPFlags.ACK,
            )
            self.path.send_from_client(
                IPPacket(src=self.src, dst=self.dst, transport=dup_ack, ttl=self.ttl)
            )
            repairs += 1
        return repairs

    def _contiguous_extent(self, base: int) -> int:
        """The first sequence number missing from the server's stream."""
        chunks: dict[int, int] = {}
        for p in self.collector.packets:
            tcp = p.tcp
            if tcp is None or p.src != self.dst:
                continue
            if tcp.sport != self.dport or tcp.dport != self.sport:
                continue
            if tcp.payload:
                end = tcp.seq + len(tcp.payload)
                if chunks.get(tcp.seq, 0) < end:
                    chunks[tcp.seq] = end
        extent = base
        for seq in sorted(chunks):
            if seq > extent:
                break
            extent = max(extent, chunks[seq])
        return extent

    # ------------------------------------------------------------------
    # observations
    # ------------------------------------------------------------------
    def server_stream(self) -> bytes:
        """Bytes the server has sent back on this connection."""
        return self.collector.server_stream(self.dst, self.dport, self.sport)

    def received_rst(self) -> bool:
        """True when any RST for this connection arrived."""
        return any(
            p.tcp.sport == self.dport and p.tcp.dport == self.sport
            for p in self.collector.rst_packets()
        )


class RawUDPClient:
    """A raw UDP sender bound to a simulated path.

    In *reliable* mode every well-formed datagram is sent twice — UDP has no
    ACKs, so blind duplication is the only loss defence; receivers in
    reliable mode deduplicate by payload.
    """

    def __init__(
        self,
        path: Path,
        src: str,
        dst: str,
        sport: int = 41_000,
        dport: int = 3478,
        ttl: int = 64,
        reliable: bool = False,
    ) -> None:
        self.path = path
        self.src = src
        self.dst = dst
        self.sport = sport
        self.dport = dport
        self.ttl = ttl
        self.reliable = reliable
        self.retransmissions = 0
        self.collector = ClientCollector(clock=path.clock)
        path.client_endpoint = self.collector

    def send_datagram(
        self,
        payload: bytes,
        ttl: int | None = None,
        checksum: int | None = None,
        length_delta: int | None = None,
    ) -> IPPacket:
        """Send one datagram, optionally with a corrupted checksum/length."""
        datagram = UDPDatagram(sport=self.sport, dport=self.dport, payload=payload)
        if checksum is not None:
            datagram.checksum = checksum
        if length_delta is not None:
            datagram.length = datagram.wire_length() + length_delta
        packet = IPPacket(
            src=self.src,
            dst=self.dst,
            transport=datagram,
            ttl=self.ttl if ttl is None else ttl,
        )
        self.path.send_from_client(packet)
        if self.reliable and checksum is None and length_delta is None and ttl is None:
            self.path.send_from_client(packet.copy())
            self.retransmissions += 1
        return packet

    def send_raw(self, packet: IPPacket) -> None:
        """Send an arbitrary pre-built packet."""
        self.path.send_from_client(packet)

    def responses(self) -> list[bytes]:
        """UDP payloads the server sent back."""
        return self.collector.udp_responses(self.dst, self.dport, self.sport)
