"""Server applications that run on top of the endpoint stacks.

The replay applications mirror the paper's replay server: they follow the
*recorded script* — emitting the recorded server-side bytes once the expected
amount of client data has arrived — regardless of the bytes' content, so
bit-inverted control replays behave exactly like the original ones.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.packets.flow import FiveTuple


class EchoApp:
    """A TCP app that echoes every delivered byte back to the client."""

    def on_connect(self, conn_id: FiveTuple) -> None:
        """No per-connection setup needed."""

    def on_data(self, conn_id: FiveTuple, data: bytes) -> bytes:
        """Echo the data verbatim."""
        return data


@dataclass
class ReplayStep:
    """One step of a recorded TCP dialogue.

    Attributes:
        client_bytes_threshold: cumulative client bytes after which the
            response fires.
        response: the server bytes to emit at that point.
    """

    client_bytes_threshold: int
    response: bytes


class ReplayServerApp:
    """Replays the server side of a recorded TCP trace.

    Responses are triggered by cumulative byte *count*, not content, matching
    the paper's replay servers (which must also serve bit-inverted and
    blinded variants of the trace).

    Args:
        steps: the recorded dialogue.
        ignore_unmatched: when True, extra client bytes beyond the script are
            tolerated (the bilateral "server-side support" deployments where
            dummy prefix data is ignored).
    """

    def __init__(self, steps: list[ReplayStep], ignore_unmatched: bool = True) -> None:
        self.steps = list(steps)
        self.ignore_unmatched = ignore_unmatched
        self._progress: dict[FiveTuple, tuple[int, int]] = {}  # conn -> (bytes, next step)
        self.received: dict[FiveTuple, bytearray] = {}

    def on_connect(self, conn_id: FiveTuple) -> None:
        """Start a fresh script position for the connection."""
        self._progress[conn_id] = (0, 0)
        self.received[conn_id] = bytearray()

    def on_data(self, conn_id: FiveTuple, data: bytes) -> bytes:
        """Advance the script; return any response steps that fire."""
        total, step_index = self._progress.get(conn_id, (0, 0))
        self.received.setdefault(conn_id, bytearray()).extend(data)
        total += len(data)
        out = bytearray()
        while step_index < len(self.steps) and total >= self.steps[step_index].client_bytes_threshold:
            out.extend(self.steps[step_index].response)
            step_index += 1
        self._progress[conn_id] = (total, step_index)
        return bytes(out)

    def stream(self, conn_id: FiveTuple) -> bytes:
        """All client bytes received on one connection."""
        return bytes(self.received.get(conn_id, b""))

    def reset(self) -> None:
        """Forget all connections."""
        self._progress.clear()
        self.received.clear()


class UDPReplayApp:
    """Replays the server side of a recorded UDP trace.

    Each recorded client datagram (by arrival index) may trigger response
    payloads.  Triggering is positional, not content-based, for the same
    reason as :class:`ReplayServerApp`.
    """

    def __init__(self, responses_by_index: dict[int, list[bytes]] | None = None) -> None:
        self.responses_by_index = dict(responses_by_index or {})
        self.received: list[bytes] = []

    def on_datagram(self, src: str, sport: int, dport: int, data: bytes) -> list[bytes]:
        """Record the datagram and emit any scripted responses for its index."""
        index = len(self.received)
        self.received.append(data)
        return list(self.responses_by_index.get(index, []))

    def reset(self) -> None:
        """Forget received datagrams."""
        self.received.clear()


class ReliableUDPReplayApp:
    """Payload-keyed, idempotent variant of :class:`UDPReplayApp`.

    On a lossy path the arrival *index* no longer identifies a datagram
    (losses shift it, duplicates repeat it), so this variant matches each
    arrival against the recorded client payloads instead.  Duplicates replay
    the same scripted responses — a lost response is recovered by the
    sender's duplicate copy.
    """

    def __init__(
        self,
        expected_payloads: list[bytes],
        responses_by_index: dict[int, list[bytes]] | None = None,
    ) -> None:
        self.expected = list(expected_payloads)
        self.responses_by_index = dict(responses_by_index or {})
        self.received: list[bytes] = []
        self._consumed = [False] * len(self.expected)
        self._replayable: dict[bytes, list[bytes]] = {}

    def on_datagram(self, src: str, sport: int, dport: int, data: bytes) -> list[bytes]:
        """Record the datagram; emit responses for its recorded position."""
        self.received.append(data)
        for index, expected in enumerate(self.expected):
            if not self._consumed[index] and expected == data:
                self._consumed[index] = True
                responses = list(self.responses_by_index.get(index, []))
                if responses:
                    self._replayable[data] = responses
                return responses
        return list(self._replayable.get(data, []))

    def reset(self) -> None:
        """Forget received datagrams and script progress."""
        self.received.clear()
        self._consumed = [False] * len(self.expected)
        self._replayable.clear()


@dataclass
class HTTPSite:
    """Static content served for one host."""

    pages: dict[str, tuple[str, bytes]] = field(default_factory=dict)  # path -> (ctype, body)


class HTTPServerApp:
    """A tiny HTTP/1.1 server used by the examples and the AT&T scenario.

    Parses pipelined GET requests from the delivered stream and serves the
    configured sites.  Responses carry a Content-Type header — which the
    AT&T Stream Saver classifier matches on (``Content-Type: video``).
    """

    def __init__(self, sites: dict[str, HTTPSite] | None = None) -> None:
        self.sites = dict(sites or {})
        self._buffers: dict[FiveTuple, bytearray] = {}
        self.requests_served = 0

    def add_page(self, host: str, path: str, content_type: str, body: bytes) -> None:
        """Register a page on *host* at *path*."""
        self.sites.setdefault(host, HTTPSite()).pages[path] = (content_type, body)

    def on_connect(self, conn_id: FiveTuple) -> None:
        """Start a fresh request buffer."""
        self._buffers[conn_id] = bytearray()

    def on_data(self, conn_id: FiveTuple, data: bytes) -> bytes:
        """Parse complete requests out of the buffer; return their responses."""
        buffer = self._buffers.setdefault(conn_id, bytearray())
        buffer.extend(data)
        out = bytearray()
        while True:
            end = buffer.find(b"\r\n\r\n")
            if end < 0:
                break
            request = bytes(buffer[: end + 4])
            del buffer[: end + 4]
            out.extend(self._respond(request))
        return bytes(out)

    def _respond(self, request: bytes) -> bytes:
        try:
            request_line = request.split(b"\r\n", 1)[0].decode("latin-1")
            method, path, _version = request_line.split(" ", 2)
        except ValueError:
            return b"HTTP/1.1 400 Bad Request\r\nContent-Length: 0\r\n\r\n"
        host = ""
        for line in request.split(b"\r\n")[1:]:
            if line.lower().startswith(b"host:"):
                host = line.split(b":", 1)[1].strip().decode("latin-1")
                break
        site = self.sites.get(host)
        if method != "GET" or site is None or path not in site.pages:
            return b"HTTP/1.1 404 Not Found\r\nContent-Length: 0\r\n\r\n"
        content_type, body = site.pages[path]
        self.requests_served += 1
        header = (
            f"HTTP/1.1 200 OK\r\nContent-Type: {content_type}\r\n"
            f"Content-Length: {len(body)}\r\n\r\n"
        ).encode("latin-1")
        return header + body

    def reset(self) -> None:
        """Forget buffered request fragments."""
        self._buffers.clear()
        self.requests_served = 0


class CompositeServerEndpoint:
    """Dispatches arriving packets to a TCP stack and a UDP stack by protocol."""

    def __init__(self, tcp_stack, udp_stack) -> None:
        self.tcp_stack = tcp_stack
        self.udp_stack = udp_stack

    def receive(self, packet) -> list:
        """Route by declared protocol; unknown protocols are recorded then dropped."""
        if packet.effective_protocol == 17:
            return self.udp_stack.receive(packet)
        return self.tcp_stack.receive(packet)

    @property
    def raw_arrivals(self):
        """All packets seen by either stack, interleaved in arrival order."""
        merged = self.tcp_stack.raw_arrivals + self.udp_stack.raw_arrivals
        return merged

    def reset(self) -> None:
        """Reset both stacks."""
        self.tcp_stack.reset()
        self.udp_stack.reset()
