"""Per-OS packet validation models (the "Server Response" columns of Table 3).

Whether an inert packet is truly inert depends on the receiving operating
system: a packet the OS silently drops is perfect evasion material, one the
OS delivers corrupts the application byte stream, and one the OS answers
with a RST tears the connection down.  The profiles below encode the
behaviour the paper measured for Linux, macOS and Windows.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.packets.ip import IPPacket
from repro.packets.tcp import TCPFlags, TCPSegment
from repro.packets.udp import UDPDatagram


class Verdict(enum.Enum):
    """What the OS does with a questionable packet."""

    DELIVER = "deliver"  # processed normally (payload may corrupt the app stream)
    DROP = "drop"  # silently discarded — the packet is inert
    RST = "rst"  # connection answered with a reset
    DELIVER_TRUNCATED = "deliver-truncated"  # Linux's UDP short-length behaviour


@dataclass(frozen=True)
class OSProfile:
    """How one operating system treats each packet anomaly.

    Every field holds a :class:`Verdict`.  Checks that all mainstream OSes
    agree on (bad checksums, impossible lengths) are fixed to DROP inside
    the stacks and are not configurable here.
    """

    name: str
    invalid_ip_options: Verdict = Verdict.DELIVER
    deprecated_ip_options: Verdict = Verdict.DELIVER
    invalid_tcp_flag_combo: Verdict = Verdict.DROP
    udp_length_short: Verdict = Verdict.DROP

    def verdict_for_ip(self, packet: IPPacket) -> Verdict:
        """Mandatory IP-header validation plus the profile-specific option checks."""
        if (
            packet.version == 4
            and packet.ihl is None
            and packet.total_length is None
            and packet.checksum is None
            and packet.protocol is None
            and not packet.options
            and not isinstance(packet.transport, bytes)
        ):
            # Pristine header: every auto-computed field is self-consistent
            # and the protocol derives from a typed (hence known) transport.
            return Verdict.DELIVER
        if not packet.has_valid_version():
            return Verdict.DROP
        if not packet.has_valid_ihl():
            return Verdict.DROP
        if not packet.has_valid_total_length():
            return Verdict.DROP
        if not packet.has_valid_checksum():
            return Verdict.DROP
        if not packet.has_known_protocol():
            return Verdict.DROP  # protocol unreachable in practice; inert either way
        if packet.options:  # padding never makes an empty option list non-empty
            if not packet.has_wellformed_options():
                return self.invalid_ip_options
            if packet.has_deprecated_options():
                return self.deprecated_ip_options
        return Verdict.DELIVER

    def verdict_for_tcp(self, packet: IPPacket, segment: TCPSegment, expected_seq: int | None) -> Verdict:
        """TCP validation relative to connection state.

        *expected_seq* is the next in-order sequence number the stack wants,
        or None when the connection is not yet established.
        """
        if not segment.verify_checksum(packet.src, packet.dst):
            return Verdict.DROP
        if not segment.has_valid_data_offset():
            return Verdict.DROP
        if not segment.flags.is_valid_combination():
            return self.invalid_tcp_flag_combo
        flags = int(segment.flags)
        if not flags & 0x06 and not flags & 0x10:  # neither SYN/RST nor ACK
            # Established-state segment without ACK: all measured OSes drop it.
            return Verdict.DROP
        if expected_seq is not None and segment.payload:
            distance = (segment.seq - expected_seq) & 0xFFFFFFFF
            reverse = (expected_seq - segment.seq) & 0xFFFFFFFF
            if min(distance, reverse) > (1 << 20):
                return Verdict.DROP  # wildly out of window
        return Verdict.DELIVER

    def verdict_for_udp(self, packet: IPPacket, datagram: UDPDatagram) -> Verdict:
        """UDP validation (checksum and declared-length consistency)."""
        if not datagram.verify_checksum(packet.src, packet.dst):
            return Verdict.DROP
        if datagram.effective_length > datagram.wire_length():
            return Verdict.DROP
        if datagram.effective_length < datagram.wire_length():
            if datagram.effective_length < 8:
                return Verdict.DROP
            return self.udp_length_short
        return Verdict.DELIVER


#: Linux: delivers packets with malformed/deprecated IP options, drops invalid
#: flag combinations, reads short UDP datagrams up to the declared length.
LINUX = OSProfile(
    name="linux",
    invalid_ip_options=Verdict.DELIVER,
    deprecated_ip_options=Verdict.DELIVER,
    invalid_tcp_flag_combo=Verdict.DROP,
    udp_length_short=Verdict.DELIVER_TRUNCATED,
)

#: macOS behaves like Linux except it drops short UDP datagrams.
MACOS = OSProfile(
    name="macos",
    invalid_ip_options=Verdict.DELIVER,
    deprecated_ip_options=Verdict.DELIVER,
    invalid_tcp_flag_combo=Verdict.DROP,
    udp_length_short=Verdict.DROP,
)

#: Windows drops malformed IP options but answers invalid flag combinations
#: with a RST (the one case where an "inert" packet kills the connection).
WINDOWS = OSProfile(
    name="windows",
    invalid_ip_options=Verdict.DROP,
    deprecated_ip_options=Verdict.DELIVER,
    invalid_tcp_flag_combo=Verdict.RST,
    udp_length_short=Verdict.DROP,
)

ALL_OS_PROFILES: tuple[OSProfile, ...] = (LINUX, MACOS, WINDOWS)
