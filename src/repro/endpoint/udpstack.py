"""A server-side UDP endpoint with OS-specific validation."""

from __future__ import annotations

from typing import Protocol

from repro.endpoint.osmodel import LINUX, OSProfile, Verdict
from repro.packets.ip import IPPacket
from repro.packets.udp import UDP_HEADER_LEN, UDPDatagram


class UDPApp(Protocol):
    """Application attached to the UDP server stack."""

    def on_datagram(self, src: str, sport: int, dport: int, data: bytes) -> list[bytes]:
        """Called per delivered datagram; returns response payloads."""


class NullUDPApp:
    """Accepts everything, responds with nothing."""

    def on_datagram(self, src: str, sport: int, dport: int, data: bytes) -> list[bytes]:  # noqa: D102
        return []


class UDPServerStack:
    """A UDP endpoint listening on one address.

    Attributes:
        raw_arrivals: every packet that reached the endpoint (pre-validation);
            read by the RS? measurement.
        delivered: (sport, dport, payload) tuples handed to the application.
    """

    def __init__(
        self,
        address: str,
        os_profile: OSProfile = LINUX,
        app: UDPApp | None = None,
        ports: set[int] | None = None,
    ) -> None:
        self.address = address
        self.os_profile = os_profile
        self.app = app if app is not None else NullUDPApp()
        self.ports = ports
        self.raw_arrivals: list[IPPacket] = []
        self.delivered: list[tuple[int, int, bytes]] = []
        self._fragments: dict[tuple[str, str, int, int], list[IPPacket]] = {}

    def receive(self, packet: IPPacket) -> list[IPPacket]:
        """Validate and deliver one datagram; return response packets."""
        self.raw_arrivals.append(packet)
        if packet.dst != self.address:
            return []
        if packet.is_fragment:
            # The OS IP layer reassembles fragments before UDP sees them.
            from repro.packets.fragment import reassemble_fragments

            key = (packet.src, packet.dst, packet.identification, packet.effective_protocol)
            bucket = self._fragments.setdefault(key, [])
            bucket.append(packet)
            whole = reassemble_fragments(bucket)
            if whole is None:
                return []
            del self._fragments[key]
            packet = whole
        if self.os_profile.verdict_for_ip(packet) is not Verdict.DELIVER:
            return []
        datagram = packet.udp
        if datagram is None or packet.effective_protocol != 17:
            return []
        if self.ports is not None and datagram.dport not in self.ports:
            return []
        verdict = self.os_profile.verdict_for_udp(packet, datagram)
        if verdict is Verdict.DROP:
            return []
        payload = datagram.payload
        if verdict is Verdict.DELIVER_TRUNCATED:
            payload = payload[: max(datagram.effective_length - UDP_HEADER_LEN, 0)]
        self.delivered.append((datagram.sport, datagram.dport, payload))
        responses = self.app.on_datagram(packet.src, datagram.sport, datagram.dport, payload)
        return [
            IPPacket(
                src=self.address,
                dst=packet.src,
                transport=UDPDatagram(sport=datagram.dport, dport=datagram.sport, payload=body),
            )
            for body in responses
        ]

    def delivered_stream(self, sport: int, dport: int) -> list[bytes]:
        """Payloads delivered for one (client-port, server-port) pair, in order."""
        return [data for s, d, data in self.delivered if s == sport and d == dport]

    def reset(self) -> None:
        """Forget all datagrams and diagnostics."""
        self.raw_arrivals.clear()
        self.delivered.clear()
        self._fragments.clear()
