"""A simplified server-side TCP stack with OS-specific validation.

Faithful enough for the reproduction: three-way handshake, cumulative
acknowledgment, in-order delivery with an out-of-order reassembly buffer,
FIN/RST teardown — and, critically, the per-OS verdicts from
:mod:`repro.endpoint.osmodel` applied to every arriving packet, since those
verdicts decide whether lib·erate's crafted packets are truly inert.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol

from repro.endpoint.osmodel import LINUX, OSProfile, Verdict
from repro.packets.flow import FiveTuple
from repro.packets.ip import IPPacket, fast_packet
from repro.packets.tcp import TCPFlags, TCPSegment, fast_segment

MTU_PAYLOAD = 1460
SERVER_ISN = 100_000

_SYN_ACK = TCPFlags.SYN | TCPFlags.ACK
_ACK_PSH = TCPFlags.ACK | TCPFlags.PSH
_RST_ACK = TCPFlags.RST | TCPFlags.ACK
_FIN, _SYN, _RST, _ACK = 0x01, 0x02, 0x04, 0x10


class TCPApp(Protocol):
    """Application attached to the TCP server stack."""

    def on_connect(self, conn_id: FiveTuple) -> None:
        """Called when a connection completes its handshake."""

    def on_data(self, conn_id: FiveTuple, data: bytes) -> bytes:
        """Called with newly delivered in-order bytes; returns response bytes."""


class NullTCPApp:
    """Accepts everything, responds with nothing."""

    def on_connect(self, conn_id: FiveTuple) -> None:  # noqa: D102 - protocol impl
        pass

    def on_data(self, conn_id: FiveTuple, data: bytes) -> bytes:  # noqa: D102
        return b""


@dataclass
class _Connection:
    client: str
    client_port: int
    server_port: int
    state: str = "syn-rcvd"  # syn-rcvd | established | closed
    expected_seq: int = 0
    server_seq: int = SERVER_ISN + 1
    stream: bytearray = field(default_factory=bytearray)
    ooo: dict[int, bytes] = field(default_factory=dict)
    reset_received: bool = False
    sent: bytearray = field(default_factory=bytearray)  # response bytes, for retransmission


class TCPServerStack:
    """A TCP endpoint listening on one address, validated per an OS profile.

    Args:
        address: the server's IP address.
        os_profile: which operating system's validation quirks to apply.
        app: application receiving the delivered byte stream.
        ports: set of listening ports (None accepts any port).
        retransmit_enabled: honour duplicate ACKs by retransmitting the
            unacknowledged tail of the response stream (enabled on lossy
            fault-injected networks; off by default so the fault-free packet
            sequence is unchanged).

    Attributes:
        raw_arrivals: every packet that physically reached the endpoint —
            including ones the OS then dropped.  This is what the RS?
            ("reaches server?") measurement reads.
        rst_sent: RSTs the stack emitted (Windows' response to invalid flag
            combinations shows up here).
    """

    def __init__(
        self,
        address: str,
        os_profile: OSProfile = LINUX,
        app: TCPApp | None = None,
        ports: set[int] | None = None,
        retransmit_enabled: bool = False,
    ) -> None:
        self.address = address
        self.os_profile = os_profile
        self.app = app if app is not None else NullTCPApp()
        self.ports = ports
        self.retransmit_enabled = retransmit_enabled
        self.raw_arrivals: list[IPPacket] = []
        self.rst_sent: list[IPPacket] = []
        self.delivered_junk = False
        self._connections: dict[tuple[str, int, int], _Connection] = {}
        self._fragments: dict[tuple[str, str, int, int], list[IPPacket]] = {}

    def _assemble_fragment(self, packet: IPPacket) -> IPPacket | None:
        from repro.packets.fragment import reassemble_fragments

        key = (packet.src, packet.dst, packet.identification, packet.effective_protocol)
        bucket = self._fragments.setdefault(key, [])
        bucket.append(packet)
        whole = reassemble_fragments(bucket)
        if whole is not None:
            del self._fragments[key]
        return whole

    # ------------------------------------------------------------------
    # endpoint interface
    # ------------------------------------------------------------------
    def receive(self, packet: IPPacket) -> list[IPPacket]:
        """Validate and process one arriving packet; return response packets."""
        self.raw_arrivals.append(packet)
        if packet.dst != self.address:
            return []
        if packet.mf or packet.frag_offset > 0:
            # Every mainstream OS reassembles IP fragments in the IP layer.
            whole = self._assemble_fragment(packet)
            if whole is None:
                return []
            packet = whole
        if self.os_profile.verdict_for_ip(packet) is not Verdict.DELIVER:
            return []
        segment = packet.transport
        declared = packet.protocol
        if type(segment) is not TCPSegment or not (declared is None or declared == 6):
            return []
        if self.ports is not None and segment.dport not in self.ports:
            return [self._rst_for(packet, segment)]
        return self._handle_segment(packet, segment)

    # ------------------------------------------------------------------
    # state machine
    # ------------------------------------------------------------------
    def _handle_segment(self, packet: IPPacket, segment: TCPSegment) -> list[IPPacket]:
        key = (packet.src, segment.sport, segment.dport)
        conn = self._connections.get(key)
        expected = conn.expected_seq if conn and conn.state == "established" else None
        verdict = self.os_profile.verdict_for_tcp(packet, segment, expected)
        if verdict is Verdict.DROP:
            return []
        if verdict is Verdict.RST:
            if conn:
                conn.state = "closed"
            return [self._rst_for(packet, segment)]

        flags = int(segment.flags)
        if flags & _RST:
            if conn:
                conn.reset_received = True
                conn.state = "closed"
            return []

        if flags & _SYN and not flags & _ACK:
            conn = _Connection(
                client=packet.src,
                client_port=segment.sport,
                server_port=segment.dport,
                expected_seq=(segment.seq + 1) & 0xFFFFFFFF,
            )
            self._connections[key] = conn
            synack = fast_segment(
                segment.dport, segment.sport, SERVER_ISN, conn.expected_seq, flags=_SYN_ACK
            )
            return [fast_packet(self.address, packet.src, synack)]

        if conn is None or conn.state == "closed":
            return []

        responses: list[IPPacket] = []
        if conn.state == "syn-rcvd" and flags & _ACK:
            conn.state = "established"
            self.app.on_connect(self._conn_id(conn))

        if segment.payload:
            delivered = self._accept_payload(conn, segment)
            if delivered:
                reply = self.app.on_data(self._conn_id(conn), delivered)
                responses.extend(self._data_packets(conn, reply))
            responses.append(self._ack_packet(conn))
        elif (
            self.retransmit_enabled
            and conn.state == "established"
            and flags == _ACK
        ):
            responses.extend(self._retransmit_for(conn, segment.ack))

        if flags & _FIN:
            conn.expected_seq = (conn.expected_seq + 1) & 0xFFFFFFFF
            conn.state = "closed"
            responses.append(self._ack_packet(conn))

        return responses

    def _accept_payload(self, conn: _Connection, segment: TCPSegment) -> bytes:
        """Insert payload into the reassembly buffer; return newly in-order bytes."""
        seq = segment.seq
        payload = segment.payload
        ahead = (seq - conn.expected_seq) & 0xFFFFFFFF
        if 0 < ahead < 0x8000_0000:
            # Future data: buffer for later (first copy at a given seq wins).
            conn.ooo.setdefault(seq, payload)
            return b""
        if ahead != 0:
            # Old data: trim the prefix we already delivered (overlap), or drop.
            behind = 0x1_0000_0000 - ahead
            if behind >= len(payload):
                return b""  # entirely old data
            payload = payload[behind:]
            seq = conn.expected_seq
        delivered = bytearray(payload)
        conn.expected_seq = (conn.expected_seq + len(payload)) & 0xFFFFFFFF
        # Drain contiguous out-of-order segments.
        while conn.expected_seq in conn.ooo:
            chunk = conn.ooo.pop(conn.expected_seq)
            delivered.extend(chunk)
            conn.expected_seq = (conn.expected_seq + len(chunk)) & 0xFFFFFFFF
        conn.stream.extend(delivered)
        return bytes(delivered)

    # ------------------------------------------------------------------
    # packet builders
    # ------------------------------------------------------------------
    def _conn_id(self, conn: _Connection) -> FiveTuple:
        return FiveTuple(
            src=conn.client,
            sport=conn.client_port,
            dst=self.address,
            dport=conn.server_port,
            protocol=6,
        )

    def _ack_packet(self, conn: _Connection) -> IPPacket:
        ack = fast_segment(conn.server_port, conn.client_port, conn.server_seq, conn.expected_seq)
        return fast_packet(self.address, conn.client, ack)

    def _data_packets(self, conn: _Connection, data: bytes) -> list[IPPacket]:
        packets = []
        for offset in range(0, len(data), MTU_PAYLOAD):
            chunk = data[offset : offset + MTU_PAYLOAD]
            segment = fast_segment(
                conn.server_port, conn.client_port, conn.server_seq, conn.expected_seq,
                flags=_ACK_PSH, payload=chunk,
            )
            conn.server_seq = (conn.server_seq + len(chunk)) & 0xFFFFFFFF
            packets.append(fast_packet(self.address, conn.client, segment))
        if self.retransmit_enabled:
            conn.sent.extend(data)
        return packets

    def _retransmit_for(self, conn: _Connection, ack: int) -> list[IPPacket]:
        """Resend the response tail a duplicate ACK says the client is missing."""
        behind = (conn.server_seq - ack) & 0xFFFFFFFF
        if not (0 < behind < 0x8000_0000) or behind > len(conn.sent):
            return []
        tail = bytes(conn.sent[len(conn.sent) - behind :])
        packets = []
        seq = ack
        for offset in range(0, len(tail), MTU_PAYLOAD):
            chunk = tail[offset : offset + MTU_PAYLOAD]
            segment = fast_segment(
                conn.server_port, conn.client_port, seq, conn.expected_seq,
                flags=_ACK_PSH, payload=chunk,
            )
            seq = (seq + len(chunk)) & 0xFFFFFFFF
            packets.append(fast_packet(self.address, conn.client, segment))
        return packets

    def _rst_for(self, packet: IPPacket, segment: TCPSegment) -> IPPacket:
        rst = fast_segment(
            segment.dport,
            segment.sport,
            segment.ack,
            (segment.seq + len(segment.payload)) & 0xFFFFFFFF,
            flags=_RST_ACK,
        )
        reply = fast_packet(self.address, packet.src, rst)
        self.rst_sent.append(reply)
        return reply

    # ------------------------------------------------------------------
    # inspection helpers used by the evaluation harness
    # ------------------------------------------------------------------
    def stream_for(self, client: str, client_port: int, server_port: int) -> bytes:
        """The in-order byte stream delivered to the app for one connection."""
        conn = self._connections.get((client, client_port, server_port))
        return bytes(conn.stream) if conn else b""

    def streams(self) -> list[bytes]:
        """All delivered streams, in connection-creation order."""
        return [bytes(c.stream) for c in self._connections.values()]

    def connection_count(self) -> int:
        """Number of connections the stack has seen."""
        return len(self._connections)

    def reset(self) -> None:
        """Forget all connections and diagnostics."""
        self._connections.clear()
        self._fragments.clear()
        self.raw_arrivals.clear()
        self.rst_sent.clear()
        self.delivered_junk = False
