"""Endpoint stacks: per-OS packet validation, TCP/UDP state machines, apps.

The paper's Table 3 "Server Response" columns show that Linux, macOS and
Windows handle lib·erate's crafted packets differently (e.g. Windows answers
an invalid TCP flag combination with a RST, Linux and macOS silently drop
it; only Windows drops packets carrying malformed IP options).  Those
differences decide whether an inert-packet technique is safe to deploy
unilaterally, so they are modeled explicitly in :mod:`repro.endpoint.osmodel`.
"""

from repro.endpoint.apps import (
    CompositeServerEndpoint,
    EchoApp,
    HTTPServerApp,
    ReplayServerApp,
    ReplayStep,
    UDPReplayApp,
)
from repro.endpoint.osmodel import ALL_OS_PROFILES, LINUX, MACOS, OSProfile, Verdict, WINDOWS
from repro.endpoint.rawclient import ClientCollector, RawTCPClient, RawUDPClient, SegmentPlan
from repro.endpoint.tcpstack import TCPServerStack
from repro.endpoint.udpstack import UDPServerStack

__all__ = [
    "CompositeServerEndpoint",
    "ReplayStep",
    "SegmentPlan",
    "ALL_OS_PROFILES",
    "EchoApp",
    "HTTPServerApp",
    "ReplayServerApp",
    "UDPReplayApp",
    "OSProfile",
    "Verdict",
    "LINUX",
    "MACOS",
    "WINDOWS",
    "ClientCollector",
    "RawTCPClient",
    "RawUDPClient",
    "TCPServerStack",
    "UDPServerStack",
]
