"""Command-line interface: record/replay traces, run the pipeline, regenerate experiments."""
