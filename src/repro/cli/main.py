"""The ``liberate`` command.

Subcommands mirror the paper's workflow over the simulated environments::

    liberate envs                        # list environments
    liberate run --env gfc --host economist.com
    liberate detect --env tmobile --host d1.cloudfront.net
    liberate characterize --env iran --host facebook.com
    liberate table1 | table2 | table3 | figure4 | efficiency | throughput
    liberate scale --flows 1000000      # bounded flow-state churn workload
    liberate trace --host x.com --out trace.json   # save a workload
    liberate obs query|diff|report|watch|html      # trace analysis + watchdog

``--flow-trace`` is the canonical flag for recording a flow trace;
``--trace`` is accepted as an alias on subcommands where it is not already
taken by "load a recorded workload trace" (run/detect/characterize).

Live telemetry: ``--live`` draws a terminal progress view while an
experiment runs, ``--events-out`` writes the deterministic telemetry event
log, and ``--dashboard`` renders the self-contained HTML dashboard (and
implies ``--metrics``).
"""

from __future__ import annotations

import argparse
import sys

from repro.traffic.http import http_get_trace
from repro.traffic.video import video_stream_trace


def _make_env(name: str, faults=None):
    from repro.envs import ENVIRONMENT_FACTORIES

    try:
        return ENVIRONMENT_FACTORIES[name](faults=faults)
    except KeyError:
        raise SystemExit(
            f"unknown environment {name!r}; choose from {sorted(ENVIRONMENT_FACTORIES)}"
        )


def _fault_profile(args: argparse.Namespace):
    """Resolve --faults/--seed into a FaultProfile (None = clean network)."""
    name = getattr(args, "faults", None)
    if not name or name == "none":
        return None
    from repro.netsim.faults import FAULT_PROFILES

    seed = getattr(args, "seed", None)
    return FAULT_PROFILES[name](seed if seed is not None else 0)


def _add_fault_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--faults",
        choices=("none", "lossy", "bursty", "chaos"),
        default="none",
        help="inject a fault profile into the simulated network",
    )
    parser.add_argument(
        "--seed", type=int, default=None, help="fault-injection RNG seed (reproducible runs)"
    )


def _make_trace(args: argparse.Namespace):
    if getattr(args, "trace", None):
        from repro.traffic.trace import Trace

        return Trace.load(args.trace)
    if getattr(args, "builtin", None):
        from repro.traffic.builtin import builtin_trace

        return builtin_trace(args.builtin)
    if getattr(args, "video", False):
        return video_stream_trace(host=args.host, total_bytes=args.size)
    return http_get_trace(args.host, response_body=b"x" * args.size)


def _add_event_core_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--event-core",
        action="store_true",
        help="run the netsim on the event-scheduler core (byte-identical "
        "verdicts/traces; the differential suite pins the equivalence)",
    )


def _add_workload_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--host", default="video.example.com", help="hostname in the workload")
    parser.add_argument("--video", action="store_true", help="use a video-stream workload")
    parser.add_argument("--size", type=int, default=2_000, help="response body size in bytes")
    parser.add_argument("--trace", help="load a recorded trace JSON instead")
    parser.add_argument(
        "--builtin", help="use a distributed built-in trace (see `liberate traces`)"
    )


def _add_obs_args(parser: argparse.ArgumentParser, workload_trace: bool = False) -> None:
    """Observability flags.

    ``--flow-trace`` is the canonical tracing flag on every subcommand;
    ``--trace`` is accepted as an alias except where *workload_trace* says
    it already means "load a recorded workload trace" (run/detect/
    characterize).
    """
    flags = ("--flow-trace",) if workload_trace else ("--flow-trace", "--trace")
    group = parser.add_argument_group("observability")
    group.add_argument(
        *flags,
        dest="flow_trace",
        action="store_true",
        help="record a flow trace (hop traversals, rule matches, verdicts) "
        "and write it as JSON lines (default file: trace.jsonl)",
    )
    group.add_argument(
        "--trace-out",
        default=None,
        metavar="FILE",
        help="flow-trace output path (implies tracing; '-' for stdout)",
    )
    group.add_argument(
        "--metrics",
        action="store_true",
        help="collect metrics (packets, drops, rule scans, cache hits) and "
        "print the snapshot after the run",
    )
    group.add_argument(
        "--profile",
        action="store_true",
        help="time each pipeline/experiment stage and print the table",
    )
    group.add_argument(
        "--live",
        action="store_true",
        help="draw a live terminal progress view (cell matrix + ETA) on stderr",
    )
    group.add_argument(
        "--events-out",
        default=None,
        metavar="FILE",
        help="write the telemetry event log as JSON lines (deterministic "
        "under a fixed --seed; '-' for stdout)",
    )
    group.add_argument(
        "--dashboard",
        nargs="?",
        const="dashboard.html",
        default=None,
        metavar="FILE",
        help="render the self-contained HTML dashboard after the run "
        "(default file: dashboard.html; implies --metrics)",
    )
    group.add_argument(
        "--coverage",
        nargs="?",
        const="coverage.json",
        default=None,
        metavar="FILE",
        help="profile rule/automaton coverage (exercised vs. dead rules, "
        "state visits) and write the snapshot as JSON "
        "(default file: coverage.json)",
    )


#: The progress view installed by ``--live`` (torn down in :func:`_finish_obs`).
_LIVE_VIEW = None


def _setup_obs(args: argparse.Namespace) -> None:
    """Install the requested observability facilities before dispatch."""
    global _LIVE_VIEW
    from repro.obs import (
        enable_bus,
        enable_coverage,
        enable_metrics,
        enable_profiling,
        enable_tracing,
    )

    if getattr(args, "flow_trace", False) or getattr(args, "trace_out", None):
        enable_tracing()
    if getattr(args, "coverage", None):
        enable_coverage()
    dashboard = getattr(args, "dashboard", None)
    if getattr(args, "metrics", False) or dashboard:
        # --dashboard implies --metrics: the headline tiles need a snapshot.
        enable_metrics()
    if getattr(args, "profile", False):
        enable_profiling()
    live = getattr(args, "live", False)
    if live or dashboard or getattr(args, "events_out", None):
        bus = enable_bus()
        if live:
            from repro.obs import LiveProgressView

            _LIVE_VIEW = LiveProgressView(stream=sys.stderr).attach(bus)
            bus.enable_streaming()


def _dashboard_model(title: str):
    """Build the report model from whatever recorders this run installed."""
    from repro.obs import coverage as obs_coverage
    from repro.obs import metrics as obs_metrics
    from repro.obs import live as obs_live
    from repro.obs import ops as obs_ops
    from repro.obs import profiling as obs_profiling
    from repro.obs import trace as obs_trace
    from repro.obs.report_html import build_model

    trace_summary = None
    if isinstance(obs_trace.TRACER, obs_trace.FlowTracer):
        from repro.obs.analyze import summarize_tracer

        trace_summary = summarize_tracer(obs_trace.TRACER)
    return build_model(
        trace_summary=trace_summary,
        metrics=obs_metrics.METRICS.snapshot() if obs_metrics.METRICS else None,
        profile=obs_profiling.PROFILER.snapshot() if obs_profiling.PROFILER else None,
        events=obs_live.BUS.tally() if obs_live.BUS else None,
        ops=obs_ops.OPS.snapshot() if obs_ops.OPS else None,
        coverage=obs_coverage.COVERAGE.snapshot() if obs_coverage.COVERAGE else None,
        title=title,
    )


def _finish_obs(args: argparse.Namespace) -> None:
    """Export/print whatever observability was collected, then tear it down."""
    global _LIVE_VIEW
    from repro.obs import coverage as obs_coverage
    from repro.obs import live as obs_live
    from repro.obs import metrics as obs_metrics
    from repro.obs import observability_off
    from repro.obs import profiling as obs_profiling
    from repro.obs import trace as obs_trace

    try:
        if _LIVE_VIEW is not None:
            _LIVE_VIEW.finish()
            _LIVE_VIEW = None
        tracer = obs_trace.TRACER
        if tracer is not None:
            out = getattr(args, "trace_out", None) or "trace.jsonl"
            if out == "-":
                tracer.export_jsonl(sys.stdout)
            else:
                count = tracer.export_jsonl(out)
                print(f"wrote {count} trace events to {out}", file=sys.stderr)
        events_out = getattr(args, "events_out", None)
        if events_out and obs_live.BUS is not None:
            if events_out == "-":
                obs_live.BUS.export_jsonl(sys.stdout)
            else:
                count = obs_live.BUS.export_jsonl(events_out)
                print(
                    f"wrote {count} telemetry events to {events_out}", file=sys.stderr
                )
        coverage_out = getattr(args, "coverage", None)
        if coverage_out and obs_coverage.COVERAGE is not None:
            import json

            with open(coverage_out, "w", encoding="utf-8") as handle:
                json.dump(obs_coverage.COVERAGE.snapshot(), handle, indent=2, sort_keys=True)
                handle.write("\n")
            print(f"wrote coverage snapshot to {coverage_out}", file=sys.stderr)
        dashboard = getattr(args, "dashboard", None)
        if dashboard:
            from repro.obs.report_html import write_dashboard

            command = getattr(args, "command", None) or "run"
            write_dashboard(
                _dashboard_model(f"lib*erate {command} dashboard"), dashboard
            )
            print(f"wrote dashboard to {dashboard}", file=sys.stderr)
        if obs_metrics.METRICS is not None:
            print("\n--- metrics ---")
            print(obs_metrics.METRICS.render())
        if obs_profiling.PROFILER is not None:
            print("\n--- profile ---")
            print(obs_profiling.PROFILER.render())
    finally:
        observability_off()


def cmd_envs(_args: argparse.Namespace) -> int:
    """List the available environments."""
    from repro.envs import ENVIRONMENT_FACTORIES

    for name, factory in sorted(ENVIRONMENT_FACTORIES.items()):
        env = factory()
        print(f"{name:10s} signal={env.signal.value:14s} middlebox at hop {env.hops_to_middlebox}")
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    """Run the full four-phase pipeline."""
    from repro.core.pipeline import Liberate

    env = _make_env(args.env, faults=_fault_profile(args))
    trace = _make_trace(args)
    report = Liberate(env, stop_at_first=args.fast, seed=args.seed).run(trace)
    print(report.summary())
    if report.evasion is not None and args.verbose:
        for result in report.evasion.results:
            mark = "+" if result.evaded else "-"
            print(f"  {mark} {result.technique:28s} ({result.category})")
    return 0


def cmd_detect(args: argparse.Namespace) -> int:
    """Run only the differentiation-detection phase."""
    from repro.core.detection import detect_differentiation

    env = _make_env(args.env, faults=_fault_profile(args))
    trials = 3 if env.reliable_mode else 1
    report = detect_differentiation(env, _make_trace(args), trials=trials)
    print(report.summary())
    return 0 if report.differentiated else 1


def cmd_characterize(args: argparse.Namespace) -> int:
    """Run only the characterization phase."""
    from repro.core.characterization import CharacterizationError, Characterizer

    env = _make_env(args.env, faults=_fault_profile(args))
    trials = 3 if env.reliable_mode else 1
    try:
        report = Characterizer(env, _make_trace(args), trials=trials).run()
    except CharacterizationError as error:
        print(f"characterization failed: {error}", file=sys.stderr)
        return 1
    print(report.summary())
    print(f"rounds={report.rounds} bytes={report.bytes_used}")
    for note in report.notes:
        print(f"note: {note}")
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    """Generate and save a workload trace."""
    trace = _make_trace(args)
    trace.save(args.out)
    print(f"saved {trace.name} ({trace.total_bytes()} bytes) to {args.out}")
    return 0


def cmd_traces(args: argparse.Namespace) -> int:
    """List the built-in traces, optionally exporting them all."""
    from repro.traffic.builtin import builtin_trace, builtin_trace_names, export_builtin_traces

    for name in builtin_trace_names():
        trace = builtin_trace(name)
        print(f"{name:14s} {trace.protocol:4s} port {trace.server_port:<5d} "
              f"{trace.total_bytes():>8d} bytes")
    if args.export:
        written = export_builtin_traces(args.export)
        print(f"exported {len(written)} traces to {args.export}")
    return 0


def cmd_table1(_args: argparse.Namespace) -> int:
    """Regenerate Table 1."""
    from repro.experiments.table1 import format_table1, run_table1

    print(format_table1(run_table1()))
    return 0


def cmd_table2(_args: argparse.Namespace) -> int:
    """Regenerate Table 2."""
    from repro.experiments.table2 import format_table2, run_table2

    print(format_table2(run_table2()))
    return 0


def cmd_table3(args: argparse.Namespace) -> int:
    """Regenerate Table 3 and compare against the paper."""
    from repro.experiments.table3 import compare_with_paper, format_table3, run_table3

    faults = _fault_profile(args)
    env_names = (
        tuple(name.strip() for name in args.envs.split(",") if name.strip())
        if getattr(args, "envs", None)
        else None
    )
    kwargs = {"env_names": env_names} if env_names else {}
    if getattr(args, "pool", None):
        from repro.runtime import WorkerPool

        kwargs["pool"] = WorkerPool(args.pool)
    rows = run_table3(characterize=not args.fast, faults=faults, **kwargs)
    if faults is not None:
        print(f"fault profile: {args.faults} (seed {faults.seed})")
    print(format_table3(rows))
    matches, total, mismatches = compare_with_paper(rows)
    print(f"\npaper agreement: {matches}/{total} cells")
    for mismatch in mismatches:
        print(f"  mismatch: {mismatch}")
    return 0


def cmd_figure4(args: argparse.Namespace) -> int:
    """Regenerate Figure 4."""
    from repro.experiments.figure4 import busy_and_quiet_summary, format_figure4, run_figure4

    pool = None
    if getattr(args, "pool", None):
        from repro.runtime import WorkerPool

        pool = WorkerPool(args.pool)
    samples = run_figure4(
        trials=args.trials, faults=_fault_profile(args), seed=args.seed, pool=pool
    )
    print(format_figure4(samples))
    print(busy_and_quiet_summary(samples))
    return 0


def cmd_efficiency(_args: argparse.Namespace) -> int:
    """Regenerate the §6 characterization-efficiency numbers."""
    from repro.experiments.efficiency import format_efficiency, run_all

    print(format_efficiency(run_all()))
    return 0


def cmd_throughput(_args: argparse.Namespace) -> int:
    """Regenerate the §6.2 T-Mobile throughput comparison."""
    from repro.experiments.throughput import format_throughput, run_tmus_throughput

    print(format_throughput(run_tmus_throughput()))
    return 0


def cmd_bilateral(_args: argparse.Namespace) -> int:
    """Run the bilateral (server-supported) evasion matrix (§7)."""
    from repro.experiments.bilateral import format_bilateral, run_bilateral_matrix

    print(format_bilateral(run_bilateral_matrix()))
    return 0


def cmd_scale(args: argparse.Namespace) -> int:
    """Run the bounded flow-state churn workload."""
    import json

    from repro.experiments.scale import ScaleConfig, format_scale, run_scale

    config = ScaleConfig(
        flows=args.flows,
        packets_per_flow=args.packets_per_flow,
        filler_bytes=args.filler_bytes,
        max_flows=args.max_flows,
        flow_byte_budget=args.byte_budget,
        shed=args.shed,
        shed_seed=args.seed if args.seed is not None else ScaleConfig.shed_seed,
    )
    result = run_scale(config)
    if args.json:
        print(json.dumps(result.as_dict(), indent=2, sort_keys=True))
    else:
        print(format_scale(result))
    return 0


def cmd_congest(args: argparse.Namespace) -> int:
    """Run the event-core interleaved-flow congestion workload."""
    import json

    from repro.experiments.congestion import (
        CongestionConfig,
        format_congestion,
        run_congestion,
    )

    config = CongestionConfig(
        flows=args.flows,
        packets_per_flow=args.packets_per_flow,
        payload_bytes=args.payload_bytes,
        spacing=args.spacing,
        stagger=args.stagger,
        env_name=args.env,
        host=args.host,
    )
    result = run_congestion(config)
    if args.json:
        print(json.dumps(result.as_dict(), indent=2, sort_keys=True))
    else:
        print(format_congestion(result))
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    """Serve live loopback connections through the fallback ladder (§8)."""
    import asyncio
    import json

    from repro.core.pipeline import Liberate
    from repro.core.proxy_server import ProxyServer, drive_clients
    from repro.obs import flight as obs_flight
    from repro.obs import ops as obs_ops
    from repro.traffic.trace import invert_bits

    env = _make_env(args.env, faults=_fault_profile(args))
    base = _make_trace(args)
    pipeline = Liberate(env, seed=args.seed)
    try:
        ladder = pipeline.deploy_ladder(
            base, window=args.window, failure_threshold=args.failure_threshold
        )
    except RuntimeError as error:
        print(f"cannot serve: {error}", file=sys.stderr)
        return 1
    overload = None
    if args.shed:
        from repro.middlebox.overload import OverloadPolicy

        overload = OverloadPolicy(
            seed=args.seed if args.seed is not None else OverloadPolicy.seed,
            shed_start=args.shed_start,
        )
    server = ProxyServer(
        ladder,
        host=args.bind,
        port=args.port,
        max_active=args.max_active,
        overload=overload,
        server_port=base.server_port,
    )

    # The operational layer is always-on for serving: latency recorders
    # cost one bisect per sample, and the flight recorder keeps sampled
    # evidence so a degradation mid-serve leaves a dump behind.  Both live
    # in the segregated ops namespace — experiment determinism is untouched.
    obs_ops.enable_ops()
    if not args.no_flight:
        obs_flight.enable_flight(
            out_dir=args.flight_dir, sample_every=args.flight_sample
        )
    slo = obs_ops.SLOPolicy(verdict_p99_ms=args.slo_p99_ms)
    ops_server = (
        obs_ops.OpsServer(server, host=args.bind, port=args.ops_port, slo=slo)
        if args.ops_port is not None
        else None
    )

    if args.selfcheck:
        matching = base.client_payloads()[0]
        # Two canonical payload objects referenced N times — the workload
        # list costs one pointer per flow, not one buffer per flow.
        payloads = [
            matching if i % 2 == 0 else invert_bits(matching)
            for i in range(args.selfcheck)
        ]
        tally = {"verdicts_returned": 0, "evaded_verdicts": 0}

        def _tally(_index: int, verdict: dict) -> None:
            # Streamed, never accumulated: the smoke run's memory footprint
            # must stay O(concurrency) no matter how many flows it serves.
            tally["verdicts_returned"] += 1
            tally["evaded_verdicts"] += 1 if verdict.get("evaded") else 0

        ops_report: dict = {}

        async def _selfcheck() -> None:
            await server.start()
            if ops_server is not None:
                await ops_server.start()
                ops_report["port"] = ops_server.bound_port
            try:
                await drive_clients(
                    "127.0.0.1",
                    server.bound_port,
                    payloads,
                    concurrency=args.concurrency,
                    on_verdict=_tally,
                )
                if ops_server is not None:
                    # Exercise the surfaces over a real socket while the
                    # proxy is still up — the selfcheck proves the endpoint
                    # serves, not just that the handlers exist.
                    host = "127.0.0.1" if args.bind == "0.0.0.0" else args.bind
                    code, body = await obs_ops.http_get(
                        host, ops_server.bound_port, "/healthz"
                    )
                    ops_report["healthz_status"] = code
                    ops_report["healthz"] = json.loads(body)
                    code, body = await obs_ops.http_get(
                        host, ops_server.bound_port, "/metrics"
                    )
                    ops_report["metrics_status"] = code
                    ops_report["metrics_series"] = sum(
                        1
                        for line in body.splitlines()
                        if line and not line.startswith("#")
                    )
            finally:
                if ops_server is not None:
                    await ops_server.stop()
                await server.stop()

        asyncio.run(_selfcheck())
        report = server.snapshot()
        report.update(tally)
        if ops_report:
            report["ops"] = ops_report
        # ru_maxrss is process-lifetime-monotonic: the proxy-smoke CI job
        # compares this across two separate interpreters to prove that
        # serving more flows doesn't grow per-flow server state.
        from repro.obs import profiling as obs_profiling

        report["peak_rss_kb"] = obs_profiling.peak_rss_kb()
        print(json.dumps(report, indent=2, sort_keys=True))
        return 0 if tally["verdicts_returned"] == len(payloads) else 1

    async def _serve() -> None:
        await server.start()
        if ops_server is not None:
            await ops_server.start()
            print(
                f"ops endpoint on {args.bind}:{ops_server.bound_port} "
                "(/metrics /healthz /statusz)",
                file=sys.stderr,
            )
        print(
            f"serving {env.name} via {ladder.active_technique.name} "
            f"on {args.bind}:{server.bound_port} (ctrl-c to stop)",
            file=sys.stderr,
        )
        await server.serve_forever()

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:
        print(json.dumps(server.snapshot(), indent=2, sort_keys=True))
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    """Regenerate the full measured-results markdown report."""
    from repro.experiments.reportgen import write_report

    target = write_report(args.out, figure4_trials=args.trials)
    print(f"wrote {target}")
    return 0


def cmd_countermeasures(_args: argparse.Namespace) -> int:
    """Run the §4.3 normalizer countermeasure study."""
    from repro.experiments.countermeasures import (
        format_countermeasures,
        run_countermeasure_study,
    )

    print(format_countermeasures(run_countermeasure_study()))
    return 0


def cmd_obs_query(args: argparse.Namespace) -> int:
    """Query an exported flow trace by kind / flow / rule / element."""
    import json

    from repro.obs.analyze import TraceIndex, format_events

    index = TraceIndex.load(args.trace_file)
    if args.timeline:
        try:
            events = index.timeline(args.timeline)
        except ValueError as error:
            print(f"obs query: {error}", file=sys.stderr)
            return 2
    else:
        events = index.query(
            kind=args.kind,
            flow=args.flow,
            rule=args.rule,
            element=args.element,
            limit=args.limit,
        )
    if args.json:
        for event in events:
            print(json.dumps(event, sort_keys=True))
    else:
        print(format_events(events))
    return 0


def cmd_obs_flight(args: argparse.Namespace) -> int:
    """Inspect a flight-recorder dump (trace-shaped JSONL)."""
    import json

    from repro.obs.analyze import TraceIndex, format_events

    try:
        index = TraceIndex.load(args.dump_file)
    except (OSError, json.JSONDecodeError) as error:
        print(f"obs flight: {error}", file=sys.stderr)
        return 2
    # The trip record carries the anomaly that caused the dump; lead with it.
    trips = index.query(kind="flight.trip")
    events = index.query(kind=args.kind, limit=args.limit)
    if args.json:
        for event in events:
            print(json.dumps(event, sort_keys=True))
        return 0
    if trips:
        for trip in trips:
            reason = trip.get("reason", "?")
            episode = trip.get("episode", reason)
            print(f"trip: {reason} (episode {episode})")
    print(format_events(events))
    return 0


def cmd_obs_report(args: argparse.Namespace) -> int:
    """Aggregate an exported flow trace into a summary report."""
    import json

    from repro.obs.analyze import TraceIndex, format_summary
    from repro.obs.report_html import build_model

    # Same report model the HTML dashboard renders; this view prints the
    # trace section.
    model = build_model(trace_summary=TraceIndex.load(args.trace_file).summary())
    summary = model["trace"]
    if args.json:
        print(json.dumps(summary, indent=2, sort_keys=True))
    else:
        print(format_summary(summary))
    return 0


def cmd_obs_html(args: argparse.Namespace) -> int:
    """Render (or --check) the self-contained HTML experiment dashboard."""
    import json

    from repro.obs.report_html import (
        build_model,
        load_model,
        missing_metric_keys,
        write_dashboard,
    )

    if args.check:
        try:
            model = load_model(args.check)
        except (OSError, ValueError, json.JSONDecodeError) as error:
            print(f"obs html: {error}", file=sys.stderr)
            return 2
        missing = missing_metric_keys(model)
        if missing:
            print(
                "obs html: dashboard references metric key(s) absent from "
                f"the snapshot: {', '.join(missing)}",
                file=sys.stderr,
            )
            return 1
        print(f"{args.check}: all headline metric keys present")
        return 0
    if not args.trace_file:
        print("obs html: a trace file is required (or use --check)", file=sys.stderr)
        return 2
    from repro.obs.analyze import TraceIndex

    metrics = None
    if args.metrics_file:
        with open(args.metrics_file, encoding="utf-8") as handle:
            metrics = json.load(handle)
    coverage = None
    if args.coverage_file:
        from repro.obs.coverage import load_snapshot

        try:
            coverage = load_snapshot(args.coverage_file)
        except (OSError, ValueError, json.JSONDecodeError) as error:
            print(f"obs html: {error}", file=sys.stderr)
            return 2
    history = flags = None
    if args.history:
        from repro.obs.history import load_history

        history = load_history(args.history)
    model = build_model(
        trace_summary=TraceIndex.load(args.trace_file).summary(),
        metrics=metrics,
        coverage=coverage,
        history=history,
        flags=flags,
        title=args.title,
    )
    write_dashboard(model, args.out)
    print(f"wrote dashboard to {args.out}")
    return 0


def cmd_obs_diff(args: argparse.Namespace) -> int:
    """Diff two exported traces; exit 1 when they structurally diverge."""
    import json

    from repro.obs.diff import diff_traces, explain
    from repro.obs.trace import load_jsonl

    diff = diff_traces(
        load_jsonl(args.left), load_jsonl(args.right), context=args.context
    )
    if args.json:
        print(json.dumps(diff.as_dict(), indent=2, sort_keys=True))
    else:
        print(explain(diff, left_name=args.left, right_name=args.right))
    return 0 if diff.identical else 1


def cmd_obs_explain(args: argparse.Namespace) -> int:
    """Reconstruct a flow's verdict-provenance chain from an exported trace."""
    import json

    from repro.obs.analyze import TraceIndex
    from repro.obs.provenance import explain_flow, format_explain

    try:
        index = TraceIndex.load(args.trace_file)
    except (OSError, json.JSONDecodeError) as error:
        print(f"obs explain: {error}", file=sys.stderr)
        return 2
    try:
        chain = explain_flow(index, args.flow)
    except ValueError as error:
        print(f"obs explain: {error}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(chain, indent=2, sort_keys=True))
    else:
        print(format_explain(chain))
    return 0 if chain["resolved"] is not None else 2


def cmd_obs_coverage(args: argparse.Namespace) -> int:
    """Report rule/automaton coverage from a --coverage snapshot."""
    import json

    from repro.obs.coverage import format_snapshot, load_snapshot

    try:
        snapshot = load_snapshot(args.snapshot)
    except (OSError, ValueError, json.JSONDecodeError) as error:
        print(f"obs coverage: {error}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(snapshot, indent=2, sort_keys=True))
    else:
        print(format_snapshot(snapshot))
    if args.fail_on_dead:
        dead = sum(
            len(scope.get("dead", ())) for scope in snapshot.get("scopes", {}).values()
        )
        if dead:
            print(f"obs coverage: {dead} dead rule(s)", file=sys.stderr)
            return 1
    return 0


def cmd_obs_witness(args: argparse.Namespace) -> int:
    """Delta-debug a payload to the minimal bytes preserving its verdict."""
    import json

    from repro.obs.witness import format_witness, minimal_payload_witness

    if args.payload_file:
        with open(args.payload_file, "rb") as handle:
            payload = handle.read()
    elif args.hex:
        try:
            payload = bytes.fromhex(args.hex)
        except ValueError as error:
            print(f"obs witness: bad --hex payload: {error}", file=sys.stderr)
            return 2
    else:
        payload = args.payload.encode("utf-8")
    try:
        report = minimal_payload_witness(
            args.env, payload, protocol=args.protocol, server_port=args.port
        )
    except ValueError as error:
        print(f"obs witness: {error}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        print(format_witness(report))
    return 0


def cmd_obs_watch(args: argparse.Namespace) -> int:
    """Check BENCH_*.json payloads against the benchmark history."""
    import time

    from repro.obs.history import run_watch

    return run_watch(
        args.results_dir,
        history_path=args.history,
        threshold=args.threshold,
        benches=args.benches,
        append=args.append,
        window=args.window,
        json_output=args.json,
        timestamp=time.time(),
    )


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="liberate",
        description="lib*erate (IMC 2017) reproduction: expose traffic-classification "
        "rules and evade them, over simulated middlebox environments.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("envs", help="list environments").set_defaults(func=cmd_envs)

    run = sub.add_parser("run", help="full pipeline against one environment")
    run.add_argument("--env", default="testbed")
    run.add_argument("--fast", action="store_true", help="stop at the first working technique")
    run.add_argument("--verbose", action="store_true")
    _add_workload_args(run)
    _add_fault_args(run)
    _add_obs_args(run, workload_trace=True)
    _add_event_core_arg(run)
    run.set_defaults(func=cmd_run)

    serve = sub.add_parser(
        "serve", help="live transparent proxy: real sockets through the fallback ladder"
    )
    serve.add_argument("--env", default="testbed")
    serve.add_argument("--bind", default="127.0.0.1", help="listen address")
    serve.add_argument("--port", type=int, default=0, help="listen port (0 = pick free)")
    serve.add_argument(
        "--window", type=int, default=5, help="fallback-ladder health window (flows)"
    )
    serve.add_argument(
        "--failure-threshold",
        type=int,
        default=3,
        help="unhealthy flows in the window that trigger a ladder step-down",
    )
    serve.add_argument(
        "--max-active",
        type=int,
        default=512,
        help="concurrent-connection capacity (the overload denominator)",
    )
    serve.add_argument(
        "--shed", action="store_true", help="enable deterministic admission load-shedding"
    )
    serve.add_argument(
        "--shed-start",
        type=float,
        default=0.95,
        help="fullness watermark where admission shedding begins",
    )
    serve.add_argument(
        "--selfcheck",
        type=int,
        default=0,
        metavar="N",
        help="serve N loopback flows from this process, print the verdict "
        "summary and exit (CI smoke mode)",
    )
    serve.add_argument(
        "--concurrency",
        type=int,
        default=64,
        help="concurrent selfcheck clients",
    )
    serve.add_argument(
        "--ops-port",
        type=int,
        default=None,
        metavar="PORT",
        help="expose /metrics, /healthz and /statusz on this port "
        "(0 picks a free port); off when omitted",
    )
    serve.add_argument(
        "--slo-p99-ms",
        type=float,
        default=None,
        metavar="MS",
        help="p99 verdict-latency SLO in milliseconds; breaches degrade "
        "/healthz and trip the flight recorder",
    )
    serve.add_argument(
        "--flight-dir",
        default=".",
        metavar="DIR",
        help="directory flight-recorder dumps are written into",
    )
    serve.add_argument(
        "--flight-sample",
        type=int,
        default=16,
        metavar="N",
        help="flight recorder keeps 1 in N flow records",
    )
    serve.add_argument(
        "--no-flight",
        action="store_true",
        help="disable the always-on flight recorder",
    )
    _add_workload_args(serve)
    _add_fault_args(serve)
    _add_obs_args(serve, workload_trace=True)
    serve.set_defaults(func=cmd_serve)

    congest = sub.add_parser(
        "congest", help="event-core congestion workload: interleaved flows on one path"
    )
    congest.add_argument("--env", default="tmobile")
    congest.add_argument("--flows", type=int, default=200, help="concurrent flows")
    congest.add_argument(
        "--packets-per-flow", type=int, default=4, help="payload packets per flow"
    )
    congest.add_argument(
        "--payload-bytes", type=int, default=400, help="request padding bytes"
    )
    congest.add_argument(
        "--spacing",
        type=float,
        default=0.004,
        help="virtual seconds between one flow's packets",
    )
    congest.add_argument(
        "--stagger",
        type=float,
        default=0.001,
        help="arrival offset between consecutive flows",
    )
    congest.add_argument(
        "--host", default="video.example.com", help="hostname carried in every request"
    )
    congest.add_argument("--json", action="store_true", help="machine-readable output")
    _add_obs_args(congest)
    congest.set_defaults(func=cmd_congest)

    detect = sub.add_parser("detect", help="differentiation detection only")
    detect.add_argument("--env", default="testbed")
    _add_workload_args(detect)
    _add_fault_args(detect)
    _add_obs_args(detect, workload_trace=True)
    detect.set_defaults(func=cmd_detect)

    char = sub.add_parser("characterize", help="classifier characterization only")
    char.add_argument("--env", default="testbed")
    _add_workload_args(char)
    _add_fault_args(char)
    _add_obs_args(char, workload_trace=True)
    char.set_defaults(func=cmd_characterize)

    trace = sub.add_parser("trace", help="generate + save a workload trace")
    trace.add_argument("--out", required=True)
    _add_workload_args(trace)
    trace.set_defaults(func=cmd_trace)

    traces = sub.add_parser("traces", help="list / export the built-in trace set")
    traces.add_argument("--export", help="directory to export all traces into")
    traces.set_defaults(func=cmd_traces)

    sub.add_parser("table1", help="regenerate Table 1").set_defaults(func=cmd_table1)
    sub.add_parser("table2", help="regenerate Table 2").set_defaults(func=cmd_table2)
    t3 = sub.add_parser("table3", help="regenerate Table 3")
    t3.add_argument("--fast", action="store_true", help="skip the characterization phase")
    t3.add_argument(
        "--envs",
        default=None,
        help="comma-separated environment subset (e.g. 'testbed' for one cell)",
    )
    t3.add_argument(
        "--pool",
        choices=("serial", "thread", "process"),
        default=None,
        help="worker-pool backend for the environment columns "
        "(default: REPRO_RUNTIME_BACKEND, serial when unset)",
    )
    _add_fault_args(t3)
    _add_obs_args(t3)
    _add_event_core_arg(t3)
    t3.set_defaults(func=cmd_table3)
    f4 = sub.add_parser("figure4", help="regenerate Figure 4")
    f4.add_argument("--trials", type=int, default=6)
    f4.add_argument(
        "--pool",
        choices=("serial", "thread", "process"),
        default=None,
        help="worker-pool backend for the (hour, trial) sweep "
        "(default: REPRO_RUNTIME_BACKEND, serial when unset)",
    )
    _add_fault_args(f4)
    _add_obs_args(f4)
    _add_event_core_arg(f4)
    f4.set_defaults(func=cmd_figure4)
    sub.add_parser("efficiency", help="regenerate §6 efficiency numbers").set_defaults(
        func=cmd_efficiency
    )
    sub.add_parser("throughput", help="regenerate §6.2 throughput numbers").set_defaults(
        func=cmd_throughput
    )
    sub.add_parser("bilateral", help="run the §7 bilateral evasion matrix").set_defaults(
        func=cmd_bilateral
    )
    sub.add_parser(
        "countermeasures", help="run the §4.3 normalizer countermeasure study"
    ).set_defaults(func=cmd_countermeasures)
    scale = sub.add_parser(
        "scale", help="bounded flow-state churn workload (LRU, timer wheel, shedding)"
    )
    scale.add_argument("--flows", type=int, default=100_000, help="distinct flows to churn")
    scale.add_argument(
        "--packets-per-flow", type=int, default=2, help="payload packets per flow"
    )
    scale.add_argument(
        "--filler-bytes", type=int, default=0, help="payload padding (drives the byte budget)"
    )
    scale.add_argument("--max-flows", type=int, default=8_192, help="engine flow-table capacity")
    scale.add_argument(
        "--byte-budget", type=int, default=None, help="scan-buffer byte bound across flows"
    )
    scale.add_argument(
        "--shed", action="store_true", help="enable deterministic admission load-shedding"
    )
    scale.add_argument("--seed", type=int, default=None, help="load-shedding coin seed")
    scale.add_argument("--json", action="store_true", help="machine-readable output")
    _add_obs_args(scale)
    scale.set_defaults(func=cmd_scale)

    report = sub.add_parser("report", help="regenerate the measured-results report")
    report.add_argument("--out", required=True)
    report.add_argument("--trials", type=int, default=3, help="Figure 4 trials per hour")
    report.set_defaults(func=cmd_report)

    obs = sub.add_parser("obs", help="analyze exported flow traces + benchmark history")
    obs_sub = obs.add_subparsers(dest="obs_command", required=True)

    query = obs_sub.add_parser("query", help="filter events of an exported trace")
    query.add_argument("trace_file", help="exported JSONL trace")
    query.add_argument("--kind", help="event kind, exact or dotted prefix (e.g. 'mbx')")
    query.add_argument("--flow", help="flow key or any substring of one")
    query.add_argument("--rule", help="exact rule id")
    query.add_argument("--element", help="exact network-element name")
    query.add_argument("--limit", type=int, default=None, help="stop after N events")
    query.add_argument(
        "--timeline",
        metavar="FLOW",
        help="print one flow's full timeline instead (exact key or substring)",
    )
    query.add_argument("--json", action="store_true", help="one JSON event per line")
    query.set_defaults(func=cmd_obs_query)

    odiff = obs_sub.add_parser(
        "diff", help="first divergence between two traces (exit 1 when they differ)"
    )
    odiff.add_argument("left", help="baseline trace (JSONL)")
    odiff.add_argument("right", help="candidate trace (JSONL)")
    odiff.add_argument(
        "--context", type=int, default=3, help="common events to show before the divergence"
    )
    odiff.add_argument("--json", action="store_true", help="machine-readable output")
    odiff.set_defaults(func=cmd_obs_diff)

    oexplain = obs_sub.add_parser(
        "explain", help="reconstruct a flow's verdict-provenance chain from a trace"
    )
    oexplain.add_argument("trace_file", help="exported JSONL trace")
    oexplain.add_argument(
        "--flow",
        required=True,
        metavar="KEY",
        help="flow key (src:sport>dst:dport/proto) or any unambiguous substring",
    )
    oexplain.add_argument("--json", action="store_true", help="machine-readable chain")
    oexplain.set_defaults(func=cmd_obs_explain)

    ocoverage = obs_sub.add_parser(
        "coverage", help="report exercised vs. dead rules from a --coverage snapshot"
    )
    ocoverage.add_argument("snapshot", help="coverage snapshot JSON (from --coverage)")
    ocoverage.add_argument(
        "--fail-on-dead",
        action="store_true",
        help="exit 1 when any registered rule was never exercised",
    )
    ocoverage.add_argument("--json", action="store_true", help="machine-readable output")
    ocoverage.set_defaults(func=cmd_obs_coverage)

    owitness = obs_sub.add_parser(
        "witness", help="delta-debug a payload to the minimal bytes behind a verdict"
    )
    owitness.add_argument("--env", required=True, help="environment to probe")
    payload_group = owitness.add_mutually_exclusive_group(required=True)
    payload_group.add_argument("--payload", help="payload as UTF-8 text")
    payload_group.add_argument(
        "--payload-file", metavar="FILE", help="payload from a binary file"
    )
    payload_group.add_argument("--hex", help="payload as hex bytes")
    owitness.add_argument(
        "--protocol", choices=("tcp", "udp"), default="tcp", help="transport protocol"
    )
    owitness.add_argument("--port", type=int, default=80, help="server port to probe")
    owitness.add_argument("--json", action="store_true", help="machine-readable report")
    owitness.set_defaults(func=cmd_obs_witness)

    oflight = obs_sub.add_parser(
        "flight", help="inspect a flight-recorder dump (the sampled anomaly evidence)"
    )
    oflight.add_argument("dump_file", help="flight dump JSONL (flight-NNN-<reason>.jsonl)")
    oflight.add_argument("--kind", default=None, help="filter records by kind")
    oflight.add_argument(
        "--limit", type=int, default=None, help="show at most N records"
    )
    oflight.add_argument("--json", action="store_true", help="machine-readable output")
    oflight.set_defaults(func=cmd_obs_flight)

    oreport = obs_sub.add_parser("report", help="aggregate summary of an exported trace")
    oreport.add_argument("trace_file", help="exported JSONL trace")
    oreport.add_argument("--json", action="store_true", help="machine-readable output")
    oreport.set_defaults(func=cmd_obs_report)

    ohtml = obs_sub.add_parser(
        "html", help="render the self-contained HTML dashboard from a trace"
    )
    ohtml.add_argument(
        "trace_file", nargs="?", default=None, help="exported JSONL trace"
    )
    ohtml.add_argument(
        "--metrics-file",
        default=None,
        metavar="FILE",
        help="metrics snapshot JSON to include (headline tiles + sparklines)",
    )
    ohtml.add_argument(
        "--coverage-file",
        default=None,
        metavar="FILE",
        help="coverage snapshot JSON to include (rule/automaton coverage section)",
    )
    ohtml.add_argument(
        "--history",
        default=None,
        metavar="FILE",
        help="benchmark history JSONL to include as a trend section",
    )
    ohtml.add_argument("--out", default="dashboard.html", help="output HTML path")
    ohtml.add_argument(
        "--title", default="lib*erate experiment dashboard", help="page heading"
    )
    ohtml.add_argument(
        "--check",
        default=None,
        metavar="DASHBOARD",
        help="instead of rendering, verify a rendered dashboard's headline "
        "metric keys all exist in its embedded snapshot (exit 1 on drift)",
    )
    ohtml.set_defaults(func=cmd_obs_html)

    watch = obs_sub.add_parser(
        "watch", help="flag benchmark regressions vs. the recorded history"
    )
    watch.add_argument(
        "--results-dir", default="benchmarks/results", help="directory of BENCH_*.json files"
    )
    watch.add_argument(
        "--history", default=None, help="history JSONL (default: <results-dir>/BENCH_history.jsonl)"
    )
    watch.add_argument(
        "--threshold",
        type=float,
        default=0.25,
        help="noise band: flag seconds beyond median*(1+threshold)",
    )
    watch.add_argument("--benches", nargs="*", default=None, help="restrict to these benchmarks")
    watch.add_argument(
        "--append", action="store_true", help="record current payloads into the history"
    )
    watch.add_argument("--window", type=int, default=50, help="rolling window per benchmark")
    watch.add_argument("--json", action="store_true", help="machine-readable output")
    watch.set_defaults(func=cmd_obs_watch)
    return parser


def main(argv: list[str] | None = None) -> int:
    """Entry point for the ``liberate`` console script."""
    parser = build_parser()
    args = parser.parse_args(argv)
    _setup_obs(args)
    try:
        if getattr(args, "event_core", False):
            from repro.netsim.scheduler import use_event_core

            with use_event_core():
                return args.func(args)
        return args.func(args)
    finally:
        _finish_obs(args)


if __name__ == "__main__":
    raise SystemExit(main())
