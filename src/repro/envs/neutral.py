"""A neutral environment: no classifier, no filters — just routers.

Used for the "Server Response" columns of Table 3: whether each OS drops,
delivers, or RSTs lib·erate's crafted packets is measured against a path
that interferes with nothing.
"""

from __future__ import annotations

from repro.endpoint.osmodel import LINUX, OSProfile
from repro.envs.base import Environment, SignalType, install_faults
from repro.netsim.faults import FaultProfile
from repro.netsim.clock import VirtualClock
from repro.netsim.hop import RouterHop
from repro.netsim.path import Path
from repro.netsim.shaper import PolicyState, TokenBucketShaper
from repro.obs import profiling as obs_profiling


def make_neutral(
    server_os: OSProfile = LINUX,
    faults: FaultProfile | None = None,
) -> Environment:
    """Build a clean path to a server running *server_os*."""
    with obs_profiling.stage("env.build.neutral"):
        return _build(server_os, faults)


def _build(server_os: OSProfile, faults: FaultProfile | None) -> Environment:
    clock = VirtualClock()
    policy = PolicyState()
    path = Path(
        clock,
        [
            RouterHop("neutral-r1", validate_ip_header=False),
            TokenBucketShaper(policy, base_rate_bps=100_000_000.0),
            RouterHop("neutral-r2", validate_ip_header=False),
        ],
    )
    return install_faults(Environment(
        name=f"neutral-{server_os.name}",
        clock=clock,
        path=path,
        policy_state=policy,
        middlebox=None,
        signal=SignalType.THROUGHPUT,
        server_os=server_os,
        base_rate_bps=100_000_000.0,
        hops_to_middlebox=0,
        default_server_port=80,
    ), faults)
