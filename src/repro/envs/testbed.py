"""The testbed environment: a carrier-grade DPI device with ground truth.

Topology (§6.1): client → DPI middlebox → router → server.  The middlebox
"shows the result of classification immediately", which is modeled as direct
access to the engine's verdict readout.

Behaviour encoded from the paper's findings:

* per-packet matching with a small inspection window (packet-limited,
  "no more than 5 packets"), match-and-forget;
* almost no header validation (nearly every inert packet is processed);
* flows are keyed by port pair even when the IP protocol field is wrong
  (Table 3 footnote 1);
* classification state flushes after 120 s, or 10 s once a RST is seen;
* UDP is classified (the Skype/STUN rule matches the MS-SERVICE-QUALITY
  attribute in the first client packet).
"""

from __future__ import annotations

from repro.envs.base import Environment, SignalType, install_faults
from repro.netsim.faults import FaultProfile
from repro.middlebox.engine import DPIMiddlebox, ReassemblyMode
from repro.middlebox.policy import RulePolicy
from repro.middlebox.rules import MatchRule, skype_stun_rule
from repro.middlebox.validation import MiddleboxValidation
from repro.netsim.clock import VirtualClock
from repro.netsim.filters import FilterPolicy, MalformedPacketFilter
from repro.netsim.hop import RouterHop
from repro.netsim.path import Path
from repro.netsim.reassembler import FragmentReassembler
from repro.netsim.shaper import PolicyState, TokenBucketShaper
from repro.obs import profiling as obs_profiling

#: Hosts the testbed device's rule set classifies (stand-ins for the paper's
#: Amazon Prime Video / Spotify / ESPN recordings).
DEFAULT_CLASSIFIED_HOSTS = (
    "video.example.com",
    "primevideo.example.com",
    "spotify.example.com",
    "espn.example.com",
    "d1.cloudfront.net",
)

THROTTLE_RATE_BPS = 1_500_000.0


def make_testbed(
    classified_hosts: tuple[str, ...] = DEFAULT_CLASSIFIED_HOSTS,
    classify_udp: bool = True,
    inspect_packet_limit: int = 5,
    faults: FaultProfile | None = None,
) -> Environment:
    """Build the testbed environment (client → DPI device → router → server)."""
    with obs_profiling.stage("env.build.testbed"):
        return _build(classified_hosts, classify_udp, inspect_packet_limit, faults)


def _build(
    classified_hosts: tuple[str, ...],
    classify_udp: bool,
    inspect_packet_limit: int,
    faults: FaultProfile | None,
) -> Environment:
    clock = VirtualClock()
    policy = PolicyState()
    rules = [
        MatchRule(
            name=f"testbed:{host}",
            keywords=[host.encode("ascii")],
            protocol="tcp",
            direction="client",
            policy=RulePolicy.throttle(THROTTLE_RATE_BPS),
        )
        for host in classified_hosts
    ]
    if classify_udp:
        rules.append(skype_stun_rule(RulePolicy.throttle(THROTTLE_RATE_BPS)))
    middlebox = DPIMiddlebox(
        name="testbed-dpi",
        rules=rules,
        policy_state=policy,
        validation=MiddleboxValidation.lax(),
        reassembly=ReassemblyMode.PER_PACKET,
        reassemble_ip_fragments=False,
        inspect_packet_limit=inspect_packet_limit,
        udp_inspect_packet_limit=6,
        match_and_forget=True,
        require_protocol_anchor=True,
        track_flows=True,
        classify_udp=classify_udp,
        pre_match_timeout=120.0,
        post_match_timeout=120.0,
        rst_timeout_reduction=10.0,
        protocol_agnostic_flow_keying=True,
    )
    shaper = TokenBucketShaper(policy, base_rate_bps=12_000_000.0)
    # The testbed router's stateful firewall dropped established-state
    # segments without an ACK flag before they reached the server (the one
    # TCP-level anomaly with RS=× in Table 3's testbed column).
    firewall = MalformedPacketFilter(
        FilterPolicy(drop_missing_ack_flag=True), name="testbed-firewall"
    )
    path = Path(
        clock,
        [
            middlebox,
            shaper,
            firewall,
            FragmentReassembler(),
            RouterHop("testbed-router", validate_ip_header=True),
        ],
    )
    return install_faults(Environment(
        name="testbed",
        clock=clock,
        path=path,
        policy_state=policy,
        middlebox=middlebox,
        signal=SignalType.CLASSIFICATION,
        base_rate_bps=12_000_000.0,
        throttle_threshold_bps=3_000_000.0,
        hops_to_middlebox=0,
        needs_port_rotation=False,
        default_server_port=80,
    ), faults)
