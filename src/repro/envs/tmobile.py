"""T-Mobile US (Binge On / Music Freedom) — zero-rating via DPI (§6.2).

Behaviour encoded from the paper's findings:

* matches hostnames in HTTP Host headers and in the TLS SNI field
  (``cloudfront.net``, ``.googlevideo.com``);
* reassembles TCP segments only in order, and only when the flow starts
  with a recognizable protocol (one dummy byte up front breaks it);
* searches a small window of payload packets, so splitting the matching
  field across five or more packets — or any reordering — evades it;
* validates the transport layer (checksums, sequence numbers, flags) but
  not IP options;
* does not classify UDP at all (QUIC escapes Binge On);
* classification persists beyond 240 s of silence but flushes immediately
  on a RST;
* the carrier network itself drops nearly every malformed packet between
  the classifier and the server, and virtually reassembles IP fragments.

The differentiation signal is the account's data-usage counter: classified
flows are zero-rated.
"""

from __future__ import annotations

from repro.envs.base import Environment, SignalType, install_faults
from repro.netsim.faults import FaultProfile
from repro.middlebox.accounting import UsageCounter
from repro.middlebox.engine import DPIMiddlebox, ReassemblyMode
from repro.middlebox.policy import RulePolicy
from repro.middlebox.rules import MatchRule
from repro.middlebox.validation import MiddleboxValidation
from repro.netsim.clock import VirtualClock
from repro.netsim.filters import FilterPolicy, MalformedPacketFilter
from repro.netsim.hop import RouterHop
from repro.netsim.path import Path
from repro.netsim.reassembler import FragmentReassembler
from repro.netsim.shaper import PolicyState, TokenBucketShaper
from repro.obs import profiling as obs_profiling

#: Content identifiers Binge On / Music Freedom match on.
DEFAULT_ZERO_RATED_KEYWORDS = (b"cloudfront.net", b".googlevideo.com", b"spotify.com")


def make_tmobile(
    zero_rated_keywords: tuple[bytes, ...] = DEFAULT_ZERO_RATED_KEYWORDS,
    inspect_packet_limit: int = 4,
    faults: FaultProfile | None = None,
) -> Environment:
    """Build the T-Mobile environment (classifier three TTL hops out)."""
    with obs_profiling.stage("env.build.tmobile"):
        return _build(zero_rated_keywords, inspect_packet_limit, faults)


def _build(
    zero_rated_keywords: tuple[bytes, ...],
    inspect_packet_limit: int,
    faults: FaultProfile | None,
) -> Environment:
    clock = VirtualClock()
    policy = PolicyState()
    rules = [
        MatchRule(
            name=f"binge-on:{keyword.decode('ascii', 'replace')}",
            keywords=[keyword],
            protocol="tcp",
            direction="client",
            # Binge On zero-rates video *and* "optimizes" (shapes) it to
            # roughly DVD bitrates — the §6.2 throughput experiment measures
            # 1.48 Mbps average without lib·erate.
            policy=RulePolicy.zero_rate(throttle_rate_bps=1_500_000.0),
        )
        for keyword in zero_rated_keywords
    ]
    middlebox = DPIMiddlebox(
        name="tmus-dpi",
        rules=rules,
        policy_state=policy,
        validation=MiddleboxValidation.partial_tmobile(),
        reassembly=ReassemblyMode.IN_ORDER,
        reassemble_ip_fragments=True,
        inspect_packet_limit=inspect_packet_limit,
        match_and_forget=True,
        require_protocol_anchor=True,
        track_flows=True,
        classify_udp=False,
        pre_match_timeout=None,  # persists beyond the 240 s we could test
        post_match_timeout=None,
        rst_flush_pre_match=True,
        rst_flush_post_match=True,
    )
    usage_counter = UsageCounter(policy)
    post_filter = MalformedPacketFilter(FilterPolicy.strict_carrier(), name="tmus-carrier-filter")
    shaper = TokenBucketShaper(policy, base_rate_bps=12_000_000.0)
    path = Path(
        clock,
        [
            usage_counter,
            RouterHop("tmus-r1"),
            RouterHop("tmus-r2"),
            middlebox,
            post_filter,
            FragmentReassembler(),
            shaper,
            RouterHop("tmus-r3"),
            RouterHop("tmus-r4"),
        ],
    )
    return install_faults(Environment(
        name="tmobile",
        clock=clock,
        path=path,
        policy_state=policy,
        middlebox=middlebox,
        signal=SignalType.ZERO_RATING,
        usage_counter=usage_counter,
        base_rate_bps=12_000_000.0,
        hops_to_middlebox=2,
        needs_port_rotation=False,
        default_server_port=80,
    ), faults)
