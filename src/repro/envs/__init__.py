"""Ready-made evaluation environments.

One factory per network the paper evaluated:

* :func:`make_testbed` — client → carrier-grade DPI device → router → server,
  with a ground-truth classification readout (§6.1);
* :func:`make_tmobile` — Binge On zero-rating, detected through the account
  usage counter (§6.2);
* :func:`make_att` — Stream Saver's transparent HTTP proxy, detected through
  throughput (§6.3);
* :func:`make_sprint` — no DPI at all (§6.4);
* :func:`make_gfc` — the Great Firewall of China, detected through injected
  RSTs (§6.5);
* :func:`make_iran` — Iran's per-packet, port-80-only censor, detected
  through the 403 block page (§6.6).
"""

from repro.envs.base import Environment, SignalType
from repro.envs.att import make_att
from repro.envs.gfc import make_gfc
from repro.envs.iran import make_iran
from repro.envs.neutral import make_neutral
from repro.envs.sprint import make_sprint
from repro.envs.testbed import make_testbed
from repro.envs.tmobile import make_tmobile

ENVIRONMENT_FACTORIES = {
    "testbed": make_testbed,
    "tmobile": make_tmobile,
    "att": make_att,
    "sprint": make_sprint,
    "gfc": make_gfc,
    "iran": make_iran,
}

__all__ = [
    "Environment",
    "SignalType",
    "make_testbed",
    "make_tmobile",
    "make_att",
    "make_sprint",
    "make_gfc",
    "make_iran",
    "make_neutral",
    "ENVIRONMENT_FACTORIES",
]
