"""AT&T Stream Saver (§6.3).

Behaviour encoded from the paper's findings:

* a transparent HTTP proxy terminates port-80 TCP connections — the one
  middlebox architecture that defeats every unilateral technique;
* classification matches standard HTTP tokens from the client (``GET``,
  ``HTTP/1.1``) *and* ``Content-Type: video`` from the server;
* matched flows are throttled to 1.5 Mbps;
* HTTPS (port 443) is not inspected at all, so moving off port 80 evades
  Stream Saver entirely.
"""

from __future__ import annotations

from repro.envs.base import Environment, SignalType, install_faults
from repro.netsim.faults import FaultProfile
from repro.middlebox.proxy import TransparentHTTPProxy
from repro.netsim.clock import VirtualClock
from repro.netsim.hop import RouterHop
from repro.netsim.path import Path
from repro.netsim.shaper import PolicyState, TokenBucketShaper
from repro.obs import profiling as obs_profiling

STREAM_SAVER_RATE_BPS = 1_500_000.0


def make_att(faults: FaultProfile | None = None) -> Environment:
    """Build the AT&T environment (transparent proxy on port 80)."""
    with obs_profiling.stage("env.build.att"):
        return _build(faults)


def _build(faults: FaultProfile | None) -> Environment:
    clock = VirtualClock()
    policy = PolicyState()
    proxy = TransparentHTTPProxy(
        policy_state=policy,
        ports=frozenset({80}),
        client_keywords=(b"GET", b"HTTP/1.1"),
        server_keywords=(b"Content-Type: video",),
        throttle_rate_bps=STREAM_SAVER_RATE_BPS,
        name="att-proxy",
    )
    shaper = TokenBucketShaper(policy, base_rate_bps=12_000_000.0)
    path = Path(
        clock,
        [
            RouterHop("att-r1"),
            RouterHop("att-r2"),
            proxy,
            shaper,
            RouterHop("att-r3"),
        ],
    )
    return install_faults(Environment(
        name="att",
        clock=clock,
        path=path,
        policy_state=policy,
        middlebox=proxy,
        signal=SignalType.THROUGHPUT,
        base_rate_bps=12_000_000.0,
        throttle_threshold_bps=3_000_000.0,
        hops_to_middlebox=2,
        needs_port_rotation=False,
        default_server_port=80,
    ), faults)
