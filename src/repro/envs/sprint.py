"""Sprint (§6.4): "mobile optimized" plans with no detectable DPI.

The paper probed Sprint with different IPs, ports, real streaming flows and
bit-inverted replays and found no pattern of differentiation, on either
unlimited or limited plans.  The environment is therefore a plain best-effort
path — the tool must correctly conclude that nothing content-based happens.
"""

from __future__ import annotations

from repro.envs.base import Environment, SignalType, install_faults
from repro.netsim.faults import FaultProfile
from repro.netsim.clock import VirtualClock
from repro.netsim.hop import RouterHop
from repro.netsim.path import Path
from repro.netsim.shaper import PolicyState, TokenBucketShaper
from repro.obs import profiling as obs_profiling


def make_sprint(faults: FaultProfile | None = None) -> Environment:
    """Build the Sprint environment (no middlebox, best-effort path)."""
    with obs_profiling.stage("env.build.sprint"):
        return _build(faults)


def _build(faults: FaultProfile | None) -> Environment:
    clock = VirtualClock()
    policy = PolicyState()
    shaper = TokenBucketShaper(policy, base_rate_bps=12_000_000.0)
    path = Path(
        clock,
        [
            RouterHop("sprint-r1"),
            RouterHop("sprint-r2"),
            shaper,
            RouterHop("sprint-r3"),
        ],
    )
    return install_faults(Environment(
        name="sprint",
        clock=clock,
        path=path,
        policy_state=policy,
        middlebox=None,
        signal=SignalType.THROUGHPUT,
        base_rate_bps=12_000_000.0,
        throttle_threshold_bps=3_000_000.0,
        hops_to_middlebox=0,
        needs_port_rotation=False,
        default_server_port=80,
    ), faults)
