"""Iran's national censor (§6.6).

Behaviour encoded from the paper's findings:

* per-packet classification: every packet is matched independently, with no
  flow tracking — prepending up to 1,000 packets never changed results;
* port-specific: only traffic to server port 80 is inspected (8080 escapes);
* the block signal is an unsolicited "HTTP/1.1 403 Forbidden" plus two RSTs;
* minimal header validation: even packets with bad TCP checksums, sequence
  numbers, flags or IP options are inspected (so an inert packet carrying
  blocked content gets the connection blocked — Table 3 footnote 3), but
  all such malformed packets are dropped before reaching the server;
* IP fragments are dropped before the classifier, and payload splitting
  across TCP segments trivially evades the per-packet matcher.
"""

from __future__ import annotations

from repro.envs.base import Environment, SignalType, install_faults
from repro.netsim.faults import FaultProfile
from repro.middlebox.engine import DPIMiddlebox, ReassemblyMode
from repro.middlebox.policy import RulePolicy
from repro.middlebox.rules import MatchRule
from repro.middlebox.validation import MiddleboxValidation
from repro.netsim.clock import VirtualClock
from repro.netsim.filters import FilterPolicy, MalformedPacketFilter
from repro.netsim.hop import RouterHop
from repro.netsim.path import Path
from repro.netsim.shaper import PolicyState, TokenBucketShaper
from repro.obs import profiling as obs_profiling

#: Hostnames the Iran profile censors (facebook.com was the paper's probe).
DEFAULT_CENSORED_HOSTS = (b"facebook.com", b"twitter.com")


def make_iran(
    censored_hosts: tuple[bytes, ...] = DEFAULT_CENSORED_HOSTS,
    faults: FaultProfile | None = None,
) -> Environment:
    """Build the Iran environment (classifier eight TTL hops out, port 80 only)."""
    with obs_profiling.stage("env.build.iran"):
        return _build(censored_hosts, faults)


def _build(censored_hosts: tuple[bytes, ...], faults: FaultProfile | None) -> Environment:
    clock = VirtualClock()
    policy = PolicyState()
    rules = [
        MatchRule(
            name=f"iran:{host.decode('ascii', 'replace')}",
            keywords=[host],
            protocol="tcp",
            direction="client",
            ports=frozenset({80}),
            policy=RulePolicy.block_with_page(),
        )
        for host in censored_hosts
    ]
    middlebox = DPIMiddlebox(
        name="iran-dpi",
        rules=rules,
        policy_state=policy,
        validation=MiddleboxValidation.partial_iran(),
        reassembly=ReassemblyMode.PER_PACKET,
        inspect_packet_limit=None,
        match_and_forget=False,
        require_protocol_anchor=False,
        track_flows=False,  # stateless: inspects every packet of every flow
        ports=frozenset({80}),
        classify_udp=False,
    )
    pre_filter = MalformedPacketFilter(
        FilterPolicy(drop_unknown_protocol=True, drop_ip_fragments=True),
        name="iran-pre-filter",
    )
    post_filter = MalformedPacketFilter(
        FilterPolicy(
            drop_invalid_ip_options=True,
            drop_deprecated_ip_options=True,
            drop_bad_tcp_checksum=True,
            drop_out_of_window_seq=True,
            drop_missing_ack_flag=True,
            drop_bad_data_offset=True,
            drop_invalid_flag_combo=True,
        ),
        name="iran-post-filter",
    )
    pre_routers = [RouterHop(f"iran-r{i}") for i in range(1, 8)]
    post_routers = [RouterHop(f"iran-r{i}") for i in range(8, 10)]
    shaper = TokenBucketShaper(policy, base_rate_bps=12_000_000.0)
    path = Path(
        clock,
        [pre_filter, *pre_routers, middlebox, post_filter, shaper, *post_routers],
    )
    return install_faults(Environment(
        name="iran",
        clock=clock,
        path=path,
        policy_state=policy,
        middlebox=middlebox,
        signal=SignalType.BLOCK_PAGE,
        base_rate_bps=12_000_000.0,
        hops_to_middlebox=7,
        needs_port_rotation=False,
        default_server_port=80,
    ), faults)
