"""The Great Firewall of China (§6.5).

Behaviour encoded from the paper's findings:

* keyword blocking on HTTP requests (``GET`` plus the censored hostname),
  on any server port, enforced with 3–5 injected RST packets;
* extensive packet validation — but *not* the TCP checksum (footnote 4) and
  not the ACK flag, so those two inert techniques plus TTL-limiting work;
* full, endpoint-grade stream reassembly (splitting/reordering fail);
* after blocking two flows to the same server:port, all traffic to that
  endpoint is blocked for a while (characterization must rotate ports);
* a RST *before* the match flushes connection state; a RST after does
  nothing;
* pre-match state is flushed after a delay that depends on the time of day
  (Figure 4): busy hours flush in tens of seconds, quiet hours effectively
  never;
* UDP is not classified at all.
"""

from __future__ import annotations

import math

from repro.envs.base import Environment, SignalType, install_faults
from repro.netsim.faults import FaultProfile
from repro.middlebox.engine import DPIMiddlebox, ReassemblyMode
from repro.middlebox.policy import RulePolicy
from repro.middlebox.rules import MatchRule
from repro.middlebox.validation import MiddleboxValidation
from repro.netsim.clock import SECONDS_PER_DAY, SECONDS_PER_HOUR, VirtualClock
from repro.netsim.filters import FilterPolicy, MalformedPacketFilter, TCPChecksumNormalizer
from repro.netsim.hop import RouterHop
from repro.netsim.path import Path
from repro.netsim.reassembler import FragmentReassembler
from repro.netsim.shaper import PolicyState, TokenBucketShaper
from repro.obs import profiling as obs_profiling

#: Hostnames the GFC profile censors (economist.com was the paper's probe).
DEFAULT_CENSORED_HOSTS = (b"economist.com", b"facebook.com", b"twitter.com")

#: Hours (local) during which state is flushed aggressively (busy hours).
BUSY_HOURS_START = 9
BUSY_HOURS_END = 23


def gfc_flush_timeout(now: float) -> float | None:
    """The GFC's pre-match state timeout as a function of the time of day.

    During busy hours classification state is evicted quickly (40–120 s,
    shortest around the evening peak); during quiet hours state is held far
    longer than the paper's 240 s probe ceiling.  Deterministic in *now* so
    experiments are reproducible; sub-hour variation adds the scatter seen
    in Figure 4.
    """
    hour = (now % SECONDS_PER_DAY) / SECONDS_PER_HOUR
    if not BUSY_HOURS_START <= hour < BUSY_HOURS_END:
        return 100_000.0  # effectively never within a test window
    # Load peaks around 20:00; timeout shrinks as load grows.
    peak_distance = min(abs(hour - 20.0), 11.0)
    base = 40.0 + 7.0 * peak_distance
    scatter = 15.0 * math.sin(now / 97.0)  # sub-hour wobble, deterministic
    return max(base + scatter, 25.0)


def make_gfc(
    censored_hosts: tuple[bytes, ...] = DEFAULT_CENSORED_HOSTS,
    endpoint_block_threshold: int = 2,
    endpoint_block_duration: float = 90.0,
    faults: FaultProfile | None = None,
) -> Environment:
    """Build the GFC environment (classifier ten TTL hops out)."""
    with obs_profiling.stage("env.build.gfc"):
        return _build(censored_hosts, endpoint_block_threshold, endpoint_block_duration, faults)


def _build(
    censored_hosts: tuple[bytes, ...],
    endpoint_block_threshold: int,
    endpoint_block_duration: float,
    faults: FaultProfile | None,
) -> Environment:
    clock = VirtualClock()
    policy = PolicyState()
    rules = [
        MatchRule(
            name=f"gfc:{host.decode('ascii', 'replace')}",
            keywords=[b"GET", host],
            require_all=True,
            protocol="tcp",
            direction="client",
            policy=RulePolicy.block_with_rsts(to_client=3, to_server=1),
        )
        for host in censored_hosts
    ]
    middlebox = DPIMiddlebox(
        name="gfc-dpi",
        rules=rules,
        policy_state=policy,
        validation=MiddleboxValidation.extensive(),
        reassembly=ReassemblyMode.FULL,
        reassemble_ip_fragments=True,
        inspect_packet_limit=None,  # full reassembly: splitting never escapes it
        match_and_forget=True,
        require_protocol_anchor=True,
        track_flows=True,
        classify_udp=False,
        pre_match_timeout=gfc_flush_timeout,
        post_match_timeout=None,
        rst_flush_pre_match=True,
        rst_flush_post_match=False,
        endpoint_block_threshold=endpoint_block_threshold,
        endpoint_block_duration=endpoint_block_duration,
    )
    post_filter = MalformedPacketFilter(
        FilterPolicy(
            drop_invalid_ip_options=True,
            drop_deprecated_ip_options=True,
            drop_bad_udp_length=True,
        ),
        name="gfc-post-filter",
    )
    pre_routers = [RouterHop(f"gfc-r{i}") for i in range(1, 10)]
    post_routers = [RouterHop(f"gfc-r{i}") for i in range(10, 13)]
    shaper = TokenBucketShaper(policy, base_rate_bps=12_000_000.0)
    path = Path(
        clock,
        [
            *pre_routers,
            middlebox,
            post_filter,
            TCPChecksumNormalizer(),
            FragmentReassembler(),
            shaper,
            *post_routers,
        ],
    )
    return install_faults(Environment(
        name="gfc",
        clock=clock,
        path=path,
        policy_state=policy,
        middlebox=middlebox,
        signal=SignalType.RST_INJECTION,
        base_rate_bps=12_000_000.0,
        hops_to_middlebox=9,
        needs_port_rotation=True,
        default_server_port=80,
    ), faults)
