"""The Environment abstraction shared by all evaluation networks."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.endpoint.osmodel import LINUX, OSProfile
from repro.middlebox.accounting import UsageCounter
from repro.middlebox.engine import DPIMiddlebox
from repro.middlebox.proxy import TransparentHTTPProxy
from repro.netsim.clock import VirtualClock
from repro.netsim.path import Path
from repro.netsim.shaper import PolicyState

CLIENT_ADDR = "10.1.0.2"
SERVER_ADDR = "203.0.113.50"


class SignalType(enum.Enum):
    """How differentiation manifests (and therefore how it is detected)."""

    CLASSIFICATION = "classification"  # testbed: direct readout on the device
    ZERO_RATING = "zero-rating"  # usage-counter inference (T-Mobile)
    THROUGHPUT = "throughput"  # shaping shows up as low goodput (AT&T, Sprint)
    RST_INJECTION = "rst"  # spurious RSTs (the GFC)
    BLOCK_PAGE = "block-page"  # HTTP 403 + RSTs (Iran)


@dataclass
class Environment:
    """One evaluation network: a path, a classifier, and a detection signal.

    Attributes:
        name: environment label ("testbed", "gfc", ...).
        clock: the shared virtual clock.
        path: the client⇄server element chain.
        policy_state: marks shared between the middlebox and path elements.
        middlebox: the classifier element (None for Sprint).
        signal: how differentiation is detected here.
        server_os: validation profile of the replay server's OS.
        usage_counter: the accounting element (T-Mobile only).
        base_rate_bps: nominal undifferentiated link rate.
        throttle_threshold_bps: goodput below this ⇒ "throttled" for
            THROUGHPUT-signal environments.
        hops_to_middlebox: ground-truth router hops client-side of the
            classifier (tests verify localization against this).
        needs_port_rotation: characterization should use a fresh server port
            per replay (the GFC's residual server:port blocking).
        default_server_port: port the environment's canonical workload uses.
    """

    name: str
    clock: VirtualClock
    path: Path
    policy_state: PolicyState
    middlebox: DPIMiddlebox | TransparentHTTPProxy | None
    signal: SignalType
    server_os: OSProfile = LINUX
    usage_counter: UsageCounter | None = None
    base_rate_bps: float = 12_000_000.0
    throttle_threshold_bps: float = 3_000_000.0
    hops_to_middlebox: int = 1
    needs_port_rotation: bool = False
    default_server_port: int = 80
    client_addr: str = CLIENT_ADDR
    server_addr: str = SERVER_ADDR
    _sport_counter: int = field(default=40_000, repr=False)

    def next_sport(self) -> int:
        """A fresh client port, so replays never collide in flow tables."""
        self._sport_counter += 1
        return self._sport_counter

    def dpi(self) -> DPIMiddlebox | None:
        """The middlebox as a DPI engine, or None (proxy/absent)."""
        return self.middlebox if isinstance(self.middlebox, DPIMiddlebox) else None

    def reset(self) -> None:
        """Reset all network state (flows, marks, counters) — a fresh start."""
        self.path.reset()
        self.policy_state.reset()
        if self.usage_counter is not None:
            self.usage_counter.reset()
