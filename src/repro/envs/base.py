"""The Environment abstraction shared by all evaluation networks."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.endpoint.osmodel import LINUX, OSProfile
from repro.middlebox.accounting import UsageCounter
from repro.middlebox.engine import DPIMiddlebox
from repro.middlebox.proxy import TransparentHTTPProxy
from repro.netsim.clock import VirtualClock
from repro.netsim.faults import FaultElement, FaultProfile
from repro.netsim.path import Path
from repro.netsim.shaper import PolicyState
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace

CLIENT_ADDR = "10.1.0.2"
SERVER_ADDR = "203.0.113.50"


class SignalType(enum.Enum):
    """How differentiation manifests (and therefore how it is detected)."""

    CLASSIFICATION = "classification"  # testbed: direct readout on the device
    ZERO_RATING = "zero-rating"  # usage-counter inference (T-Mobile)
    THROUGHPUT = "throughput"  # shaping shows up as low goodput (AT&T, Sprint)
    RST_INJECTION = "rst"  # spurious RSTs (the GFC)
    BLOCK_PAGE = "block-page"  # HTTP 403 + RSTs (Iran)


@dataclass
class Environment:
    """One evaluation network: a path, a classifier, and a detection signal.

    Attributes:
        name: environment label ("testbed", "gfc", ...).
        clock: the shared virtual clock.
        path: the client⇄server element chain.
        policy_state: marks shared between the middlebox and path elements.
        middlebox: the classifier element (None for Sprint).
        signal: how differentiation is detected here.
        server_os: validation profile of the replay server's OS.
        usage_counter: the accounting element (T-Mobile only).
        base_rate_bps: nominal undifferentiated link rate.
        throttle_threshold_bps: goodput below this ⇒ "throttled" for
            THROUGHPUT-signal environments.
        hops_to_middlebox: ground-truth router hops client-side of the
            classifier (tests verify localization against this).
        needs_port_rotation: characterization should use a fresh server port
            per replay (the GFC's residual server:port blocking).
        default_server_port: port the environment's canonical workload uses.
        fault_profile: active fault-injection profile, or None when the
            network is perfectly reliable (the default).
    """

    name: str
    clock: VirtualClock
    path: Path
    policy_state: PolicyState
    middlebox: DPIMiddlebox | TransparentHTTPProxy | None
    signal: SignalType
    server_os: OSProfile = LINUX
    usage_counter: UsageCounter | None = None
    base_rate_bps: float = 12_000_000.0
    throttle_threshold_bps: float = 3_000_000.0
    hops_to_middlebox: int = 1
    needs_port_rotation: bool = False
    default_server_port: int = 80
    client_addr: str = CLIENT_ADDR
    server_addr: str = SERVER_ADDR
    fault_profile: FaultProfile | None = None
    _sport_counter: int = field(default=40_000, repr=False)

    def next_sport(self) -> int:
        """A fresh client port, so replays never collide in flow tables."""
        self._sport_counter += 1
        return self._sport_counter

    @property
    def reliable_mode(self) -> bool:
        """True when the path injects faults, so endpoints should run ARQ."""
        return self.fault_profile is not None and not self.fault_profile.is_zero()

    def fault_element(self) -> FaultElement | None:
        """The installed fault injector, or None on a reliable network."""
        for element in self.path.elements:
            if isinstance(element, FaultElement):
                return element
        return None

    def dpi(self) -> DPIMiddlebox | None:
        """The middlebox as a DPI engine, or None (proxy/absent)."""
        return self.middlebox if isinstance(self.middlebox, DPIMiddlebox) else None

    def reset(self) -> None:
        """Reset all network state (flows, marks, counters) — a fresh start."""
        self.path.reset()
        self.policy_state.reset()
        if self.usage_counter is not None:
            self.usage_counter.reset()


def install_faults(env: Environment, profile: FaultProfile | None) -> Environment:
    """Attach a fault injector at *env*'s client edge.

    A ``None`` or all-zero profile leaves the environment untouched, so the
    fault-free path is exactly today's: no element is inserted and
    ``reliable_mode`` stays False.
    """
    if profile is None or profile.is_zero():
        _record_env(env)
        return env
    restart_targets = []
    if profile.restart_interval is not None and env.middlebox is not None:
        restart_targets.append(env.middlebox)
    env.path.insert_element(FaultElement(profile, restart_targets=tuple(restart_targets)), 0)
    env.fault_profile = profile
    if obs_trace.TRACER is not None:
        obs_trace.TRACER.emit(
            "env.install_faults",
            env.clock.now,
            env=env.name,
            seed=profile.seed,
        )
    _record_env(env)
    return env


def _record_env(env: Environment) -> None:
    """Mark an environment's birth in the trace (every factory ends here)."""
    if obs_trace.TRACER is not None:
        obs_trace.TRACER.emit(
            "env.created",
            env.clock.now,
            env=env.name,
            elements=[element.name for element in env.path.elements],
            signal=env.signal.value,
            faulty=env.fault_profile is not None,
        )
    if obs_metrics.METRICS is not None:
        obs_metrics.METRICS.inc("env.created")
        obs_metrics.METRICS.inc(f"env.created.{env.name}")
