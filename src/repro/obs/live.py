"""The live telemetry bus: structured lifecycle events, streamed and logged.

The paper's workflow is interactive — an operator watches detection and
characterization converge against a live middlebox and reads off which
evasion technique won.  Traces and metrics (PRs 3–4) only answer questions
*after* a run finishes; the telemetry bus closes that gap with structured
**lifecycle events** (experiment/cell/trial start+finish, pool task
dispatch/retry/circuit activity, fault injections, replay verdicts) that are

* **streamed live** to the parent process over a multiprocessing queue while
  worker-pool tasks are still running, feeding the terminal progress view
  (:class:`LiveProgressView`, ``--live``), and
* **logged deterministically** to an append-only ``events.jsonl``
  (``--events-out``): event timestamps come from a **logical clock** (the
  event's position in the merged log), never wall-clock, so two runs of the
  same seeded experiment produce byte-identical event logs.

Both renderings come from one recorder.  Like the tracer and the metrics
registry, the bus is **off by default**: the module-level :data:`BUS` is
``None`` and every instrumented site guards with a single ``is not None``
check, so the PR 1 fast paths are untouched when telemetry is disabled.

Process safety follows the trace sharder's playbook
(:mod:`repro.obs.trace`): a worker-pool task buffers its events locally
(per-thread on the thread backend, per-process on the process backend) and
the pool ships each task's buffer back with its result, merging buffers into
the parent log in **task-index order** — the order a serial run would have
appended them in.  The multiprocessing stream queue is display-only;
dropping a streamed event can blur the progress view but can never corrupt
the log.
"""

from __future__ import annotations

import json
import threading
from contextlib import contextmanager
from typing import IO, Callable, Iterator, Sequence

#: Bumped whenever an event kind or field is renamed or removed (additions
#: are backward-compatible and do not bump it).
EVENTS_SCHEMA_VERSION = 1

#: Sentinel kind terminating the stream-drainer thread.
_STREAM_STOP = "__telemetry.stream.stop__"


class LiveEvent:
    """One telemetry record.

    Attributes:
        lclock: logical-clock timestamp — the event's position in the merged
            log.  Deterministic by construction (no wall-clock anywhere).
        kind: dotted event kind ("exp.start", "table3.cell", "pool.retry").
        fields: flat JSON-serializable payload.
    """

    __slots__ = ("lclock", "kind", "fields")

    def __init__(self, lclock: int, kind: str, fields: dict) -> None:
        self.lclock = lclock
        self.kind = kind
        self.fields = fields

    def as_dict(self) -> dict:
        record = {"lclock": self.lclock, "kind": self.kind}
        record.update(self.fields)
        return record

    def to_json(self) -> str:
        """One canonical JSON line (sorted keys, no whitespace)."""
        return json.dumps(self.as_dict(), sort_keys=True, separators=(",", ":"))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"LiveEvent({self.lclock}, {self.kind!r}, {self.fields!r})"


class TelemetryBus:
    """An append-only telemetry log plus live fan-out to subscribers.

    Emissions from the driver process append directly (and notify
    subscribers immediately); emissions inside a worker-pool task are
    buffered per task (:meth:`begin_task` / :meth:`end_task`) and appended
    later by :meth:`absorb`, in task-index order, when the pool merges the
    shipped buffers — so the log is identical whatever backend ran the map.
    """

    def __init__(self) -> None:
        self.events: list[LiveEvent] = []
        self._lclock = 0
        self._subscribers: list[Callable[[str, dict], None]] = []
        self._local = threading.local()
        self._stream = None  # display-only multiprocessing queue, if any
        self._drainer: threading.Thread | None = None
        self._manager = None

    # ------------------------------------------------------------------
    # recording (called only behind an ``is not None`` guard)
    # ------------------------------------------------------------------
    def emit(self, kind: str, **fields: object) -> None:
        """Record one event: buffered inside a pool task, appended otherwise."""
        buffer = getattr(self._local, "buffer", None)
        if buffer is None:
            self._append(kind, fields, notify=True)
            return
        buffer.append((kind, fields))
        stream = getattr(self._local, "stream", None)
        if stream is not None:
            try:
                stream.put((kind, fields))
            except Exception:  # pragma: no cover - display-only, best-effort
                pass

    def _append(self, kind: str, fields: dict, notify: bool) -> None:
        self.events.append(LiveEvent(self._lclock, kind, fields))
        self._lclock += 1
        if notify:
            self._notify(kind, fields)

    def _notify(self, kind: str, fields: dict) -> None:
        for subscriber in self._subscribers:
            subscriber(kind, fields)

    # ------------------------------------------------------------------
    # worker-side task buffering
    # ------------------------------------------------------------------
    def begin_task(self, stream=None) -> None:
        """Route this worker's emissions into a fresh per-task buffer.

        *stream* is the optional display-only multiprocessing queue; each
        buffered event is additionally pushed there so the parent's progress
        view updates while the task is still running.
        """
        self._local.buffer = []
        self._local.stream = stream

    def end_task(self) -> list[tuple[str, dict]]:
        """Detach and return the buffer installed by :meth:`begin_task`."""
        buffer = getattr(self._local, "buffer", None) or []
        self._local.buffer = None
        self._local.stream = None
        return buffer

    def absorb(self, buffers: Sequence[Sequence[tuple[str, dict]]]) -> int:
        """Append shipped task *buffers* to the log, in the given order.

        The pool passes buffers in task-index order, reproducing the append
        sequence of a serial run.  Subscribers are only re-notified when no
        stream queue is attached (streamed events already reached them live).
        """
        notify = self._stream is None
        absorbed = 0
        for buffer in buffers:
            for kind, fields in buffer:
                self._append(kind, dict(fields), notify=notify)
                absorbed += 1
        return absorbed

    # ------------------------------------------------------------------
    # live fan-out
    # ------------------------------------------------------------------
    def subscribe(self, subscriber: Callable[[str, dict], None]) -> None:
        """Register *subscriber* to receive ``(kind, fields)`` as events land."""
        self._subscribers.append(subscriber)

    def enable_streaming(self):
        """Create the display-only multiprocessing queue and its drainer.

        Returns the queue (a picklable manager proxy, so worker-pool tasks
        on any backend can push to it).  Idempotent.
        """
        if self._stream is not None:
            return self._stream
        import multiprocessing

        self._manager = multiprocessing.Manager()
        self._stream = self._manager.Queue()
        self._drainer = threading.Thread(
            target=self._drain, name="telemetry-stream-drainer", daemon=True
        )
        self._drainer.start()
        return self._stream

    @property
    def stream(self):
        """The streaming queue, or None when streaming is off."""
        return self._stream

    def _drain(self) -> None:
        while True:
            try:
                kind, fields = self._stream.get()
            except (EOFError, OSError):  # pragma: no cover - manager shut down
                return
            if kind == _STREAM_STOP:
                return
            self._notify(kind, fields)

    def close(self) -> None:
        """Stop the stream drainer and shut the manager down (idempotent)."""
        if self._stream is not None:
            try:
                self._stream.put((_STREAM_STOP, {}))
            except Exception:  # pragma: no cover - manager already gone
                pass
            if self._drainer is not None:
                self._drainer.join(timeout=5.0)
            self._drainer = None
            self._stream = None
        if self._manager is not None:
            self._manager.shutdown()
            self._manager = None

    # ------------------------------------------------------------------
    # readout / export
    # ------------------------------------------------------------------
    def tally(self) -> dict[str, int]:
        """Event count per kind, sorted."""
        counts: dict[str, int] = {}
        for event in self.events:
            counts[event.kind] = counts.get(event.kind, 0) + 1
        return dict(sorted(counts.items()))

    def __len__(self) -> int:
        return len(self.events)

    def export_jsonl(self, target: str | IO[str]) -> int:
        """Write the event log as JSON lines; returns the number of events.

        The first line is a header record carrying the schema version and
        event count, mirroring the flow tracer's export, so a truncated log
        is detectable.  The payload is byte-deterministic: logical-clock
        timestamps, canonical JSON, sorted keys.
        """
        header = json.dumps(
            {
                "kind": "events.header",
                "schema": EVENTS_SCHEMA_VERSION,
                "events": len(self.events),
            },
            sort_keys=True,
            separators=(",", ":"),
        )
        lines = [header] + [event.to_json() for event in self.events]
        payload = "\n".join(lines) + "\n"
        if isinstance(target, str):
            with open(target, "w", encoding="utf-8") as handle:
                handle.write(payload)
        else:
            target.write(payload)
        return len(self.events)


def load_events_jsonl(path: str) -> list[dict]:
    """Read an exported event log back as dicts (header line dropped)."""
    records = []
    with open(path, encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            if record.get("kind") == "events.header":
                continue
            records.append(record)
    return records


# ----------------------------------------------------------------------
# the module-level bus (None = telemetry disabled, the default)
# ----------------------------------------------------------------------
BUS: TelemetryBus | None = None


def enable_bus() -> TelemetryBus:
    """Install a fresh process-wide telemetry bus and return it."""
    global BUS
    BUS = TelemetryBus()
    return BUS


def disable_bus() -> None:
    """Remove the process-wide bus (after closing any stream it holds)."""
    global BUS
    if BUS is not None:
        BUS.close()
    BUS = None


@contextmanager
def bus_on() -> Iterator[TelemetryBus]:
    """Scoped telemetry: enable on entry, restore the previous state on exit."""
    global BUS
    previous = BUS
    bus = TelemetryBus()
    BUS = bus
    try:
        yield bus
    finally:
        bus.close()
        BUS = previous


def begin_task(stream=None) -> None:
    """Worker-side: buffer this task's emissions for deterministic merging.

    In a worker *process* the forked/spawned interpreter has its own
    :data:`BUS` global (a fork-time copy, or ``None`` under spawn); a fresh
    bus is installed if needed so the buffer never aliases the parent log.
    In a worker *thread* the shared bus buffers per-thread via its
    ``threading.local`` slot.
    """
    global BUS
    if BUS is None:
        BUS = TelemetryBus()
    BUS.begin_task(stream=stream)


def end_task() -> list[tuple[str, dict]]:
    """Worker-side: detach and return the buffer begun by :func:`begin_task`."""
    if BUS is None:  # pragma: no cover - begin_task always installs a bus
        return []
    return BUS.end_task()


# ----------------------------------------------------------------------
# the live terminal progress view (--live)
# ----------------------------------------------------------------------
class LiveProgressView:
    """Renders bus events as a filling cell matrix with an ETA.

    Subscribes to a :class:`TelemetryBus` and keeps a tiny model of the run:
    the experiment's dimensions (from ``exp.start``), which cells have
    completed (``table3.cell`` / ``figure4.sample``), and pool activity
    (dispatch/done/retry).  ETA extrapolates from the mean wall-clock gap
    between completed cells — wall time stays in the view, never in the log.

    Args:
        stream: where to draw (e.g. ``sys.stderr``); ``None`` renders only
            on demand via :meth:`render` (how the tests drive it).
        clock: monotonic time source, injectable for tests.
    """

    def __init__(self, stream: IO[str] | None = None, clock=None) -> None:
        import time

        self.stream = stream
        self.clock = clock or time.monotonic
        self.experiment: str | None = None
        self.envs: list[str] = []
        self.techniques: list[str] = []
        self.total_cells = 0
        self.cells: dict[tuple[str, str], dict] = {}
        self.samples = 0
        self.tasks_dispatched = 0
        self.tasks_done = 0
        self.retries = 0
        self._started_at: float | None = None
        self._finish_times: list[float] = []
        self._lock = threading.Lock()
        self._lines_drawn = 0

    def attach(self, bus: TelemetryBus) -> "LiveProgressView":
        bus.subscribe(self.on_event)
        return self

    # ------------------------------------------------------------------
    # event model
    # ------------------------------------------------------------------
    def on_event(self, kind: str, fields: dict) -> None:
        with self._lock:
            self._apply(kind, fields)
        if self.stream is not None:
            self.draw()

    def _apply(self, kind: str, fields: dict) -> None:
        if kind == "exp.start":
            self.experiment = str(fields.get("experiment", "?"))
            self.envs = list(fields.get("envs") or [])
            self.techniques = list(fields.get("techniques") or [])
            self.total_cells = int(fields.get("cells") or 0)
            self._started_at = self.clock()
        elif kind == "table3.cell":
            key = (str(fields.get("env")), str(fields.get("technique")))
            self.cells[key] = dict(fields)
            self._finish_times.append(self.clock())
        elif kind == "figure4.sample":
            self.samples += 1
            self._finish_times.append(self.clock())
        elif kind == "pool.dispatch":
            self.tasks_dispatched += 1
        elif kind == "pool.task_done":
            self.tasks_done += 1
        elif kind == "pool.retry":
            self.retries += 1

    def completed(self) -> int:
        return len(self.cells) + self.samples

    def eta_seconds(self) -> float | None:
        """Remaining-cell estimate from the mean completed-cell spacing."""
        done = self.completed()
        if self._started_at is None or not self.total_cells or done == 0:
            return None
        remaining = self.total_cells - done
        if remaining <= 0:
            return 0.0
        elapsed = (self._finish_times[-1] if self._finish_times else self.clock()) - self._started_at
        return elapsed / done * remaining

    # ------------------------------------------------------------------
    # rendering
    # ------------------------------------------------------------------
    def render(self) -> str:
        """The current progress picture as text (matrix + counters + ETA)."""
        with self._lock:
            return self._render_locked()

    def _render_locked(self) -> str:
        done = self.completed()
        title = self.experiment or "experiment"
        header = f"{title}: {done}/{self.total_cells or '?'} cells"
        if self.tasks_dispatched:
            header += f"  pool {self.tasks_done}/{self.tasks_dispatched}"
        if self.retries:
            header += f"  retries {self.retries}"
        eta = self.eta_seconds()
        if eta is not None:
            header += f"  ETA {eta:.0f}s" if eta > 0 else "  done"
        lines = [header]
        if self.envs and self.techniques:
            width = max((len(t) for t in self.techniques), default=8)
            lines.append(" " * (width + 1) + " ".join(f"{e[:7]:>7s}" for e in self.envs))
            for technique in self.techniques:
                marks = []
                for env in self.envs:
                    cell = self.cells.get((env, technique))
                    if cell is None:
                        marks.append(f"{'·':>7s}")
                    else:
                        cc, rs = cell.get("cc", "?"), cell.get("rs", "?")
                        marks.append(f"{cc + '/' + rs:>7s}")
                lines.append(f"{technique:<{width}s} " + " ".join(marks))
        return "\n".join(lines)

    def draw(self) -> None:
        """Redraw in place on the attached stream (ANSI cursor-up rewind)."""
        if self.stream is None:
            return
        with self._lock:
            text = self._render_locked()
            if self._lines_drawn:
                self.stream.write(f"\x1b[{self._lines_drawn}F\x1b[J")
            self.stream.write(text + "\n")
            self._lines_drawn = text.count("\n") + 1
            try:
                self.stream.flush()
            except Exception:  # pragma: no cover - stream closed mid-run
                pass

    def finish(self) -> None:
        """Final draw; leaves the completed matrix on screen."""
        if self.stream is not None:
            self.draw()
