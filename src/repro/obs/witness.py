"""Minimal-witness extraction: the fewest bytes that flip a verdict.

The paper's rule-exposure loop, packaged as a diagnostic: given an
environment and a payload the classifier reacts to, delta-debug the payload
down to a **minimal witness** — a smallest byte subset that still produces
the same verdict when replayed through the deterministic netsim.  The
witness is, in effect, the matched rule read back out of a black box: for a
keyword rule it converges on exactly the keyword bytes (plus whatever
protocol anchor the classifier insists on).

Minimization is Zeller-style ddmin over byte positions.  Every probe builds
a fresh environment from :data:`repro.envs.ENVIRONMENT_FACTORIES` (fixed
seeds, virtual clock), replays a single-message synthetic trace through
:class:`repro.replay.session.ReplaySession`, and judges the outcome — so
the whole search is deterministic: same env, same payload, same witness,
on every backend and every machine.  Probes are cached by candidate bytes;
complement-heavy ddmin revisits subsets often.
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.packets.flow import Direction
from repro.traffic.trace import Trace, TracePacket

#: Bumped when the witness-report layout changes shape.
WITNESS_SCHEMA_VERSION = 1


def ddmin(
    items: Sequence[int], test: Callable[[list[int]], bool]
) -> list[int]:
    """Zeller's ddmin: a minimal sublist of *items* on which *test* holds.

    *test* must hold on the full list (the caller checks); the result is
    1-minimal — removing any single remaining item breaks the property.
    Deterministic: chunk boundaries depend only on lengths, and candidate
    order is fixed.
    """
    current = list(items)
    granularity = 2
    while len(current) >= 2:
        chunk_size = max(1, len(current) // granularity)
        chunks = [
            current[start : start + chunk_size]
            for start in range(0, len(current), chunk_size)
        ]
        reduced = False
        for chunk in chunks:
            if len(chunk) < len(current) and test(chunk):
                current = chunk
                granularity = 2
                reduced = True
                break
        if not reduced:
            for index in range(len(chunks)):
                complement = [
                    item
                    for position, chunk in enumerate(chunks)
                    for item in chunk
                    if position != index
                ]
                if len(complement) < len(current) and test(complement):
                    current = complement
                    granularity = max(granularity - 1, 2)
                    reduced = True
                    break
        if not reduced:
            if granularity >= len(current):
                break
            granularity = min(len(current), granularity * 2)
    if len(current) == 1 and test([]):
        return []
    return current


class _Prober:
    """Deterministic replay probe with per-payload caching."""

    def __init__(
        self,
        env_name: str,
        protocol: str,
        server_port: int,
        trace_name: str = "witness-probe",
    ) -> None:
        from repro.envs import ENVIRONMENT_FACTORIES

        factory = ENVIRONMENT_FACTORIES.get(env_name)
        if factory is None:
            raise ValueError(
                f"unknown environment {env_name!r}; expected one of "
                f"{sorted(ENVIRONMENT_FACTORIES)}"
            )
        self._factory = factory
        self.env_name = env_name
        self.protocol = protocol
        self.server_port = server_port
        self.trace_name = trace_name
        self.probes = 0
        self._cache: dict[bytes, str | None] = {}

    def verdict(self, payload: bytes) -> str | None:
        """The environment's verdict label for a one-message dialogue.

        Classification environments report the classifier's verdict string;
        signal-only environments (throughput, zero-rating, RST injection)
        report the sentinel ``"differentiated"`` or ``None`` — either way a
        stable label the minimizer can compare.
        """
        cached = self._cache.get(payload, Ellipsis)
        if cached is not Ellipsis:
            return cached
        self.probes += 1
        from repro.replay.session import ReplaySession

        env = self._factory()
        trace = Trace(
            name=self.trace_name,
            protocol=self.protocol,
            server_port=self.server_port,
            packets=[
                TracePacket(direction=Direction.CLIENT_TO_SERVER, payload=payload)
            ],
        )
        outcome = ReplaySession(env, trace, server_port=self.server_port).run()
        if outcome.classification is not None:
            label: str | None = outcome.classification
        elif outcome.differentiated:
            label = "differentiated"
        else:
            label = None
        self._cache[payload] = label
        return label


def _printable(data: bytes) -> str:
    return "".join(chr(b) if 32 <= b < 127 else "·" for b in data)


def minimal_payload_witness(
    env_name: str,
    payload: bytes,
    protocol: str = "tcp",
    server_port: int = 80,
) -> dict:
    """Delta-debug *payload* to the minimal byte set preserving its verdict.

    Replays the full payload once to learn the target verdict, the empty
    payload once to learn the control verdict, and — when they differ —
    ddmin-minimizes the byte positions whose presence keeps the target
    verdict.  Returns a schema-versioned JSON-ready report; when the full
    payload already matches the control (nothing to witness), the report
    says so and no minimization runs.
    """
    prober = _Prober(env_name, protocol, server_port)
    target = prober.verdict(payload)
    control = prober.verdict(b"")
    report = {
        "schema": WITNESS_SCHEMA_VERSION,
        "env": env_name,
        "protocol": protocol,
        "server_port": server_port,
        "payload_len": len(payload),
        "verdict": target,
        "control_verdict": control,
    }
    if target == control:
        report.update(witness=None, probes=prober.probes)
        return report

    def keeps_verdict(positions: list[int]) -> bool:
        candidate = bytes(payload[p] for p in positions)
        return prober.verdict(candidate) == target

    positions = ddmin(range(len(payload)), keeps_verdict)
    witness = bytes(payload[p] for p in positions)
    report.update(
        witness={
            "positions": positions,
            "bytes_hex": witness.hex(),
            "bytes_printable": _printable(witness),
            "length": len(positions),
        },
        probes=prober.probes,
    )
    return report


def format_witness(report: dict) -> str:
    """Render a witness report for the terminal."""
    lines = [
        f"environment: {report['env']}  ({report['protocol']}"
        f"/{report['server_port']})",
        f"payload: {report['payload_len']} bytes  "
        f"verdict={report['verdict']!r}  control={report['control_verdict']!r}",
    ]
    witness = report.get("witness")
    if witness is None:
        lines.append(
            "no witness: the payload's verdict equals the empty-payload "
            "control (nothing the classifier keyed on)"
        )
    else:
        lines.append(
            f"minimal witness: {witness['length']} of {report['payload_len']} "
            f"bytes ({report['probes']} probes)"
        )
        lines.append(f"  bytes : {witness['bytes_printable']}")
        lines.append(f"  hex   : {witness['bytes_hex']}")
        positions = witness["positions"]
        compact = ",".join(str(p) for p in positions[:32])
        if len(positions) > 32:
            compact += f",… (+{len(positions) - 32})"
        lines.append(f"  at    : {compact}")
    return "\n".join(lines)
