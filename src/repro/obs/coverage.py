"""Rule and automaton coverage: which parts of the rule set a run exercised.

The flow tracer says what happened to one packet; the metrics registry says
how much of everything happened.  This recorder answers a third question —
*which compiled rules and automaton states did the workload actually touch* —
the observability substrate for the paper's rule-exposure loop: a rule that
no probe ever exercises is a rule we have not exposed.

Three families of counters, all cheap dict/array bumps:

``rule_hits``
    verdict-winning rule matches, keyed ``"scope/rule-name"`` where *scope*
    names the rule universe (an environment's DPI element).  Scopes are
    registered up front via :meth:`CoverageRecorder.register_rules` so dead
    rules — registered but never hit — are first-class reportable facts.

``automata``
    per-automaton state/edge visit arrays, keyed by a stable digest of the
    pattern list (automata are interned per pattern set, so the digest is
    the cross-process identity).  When coverage is enabled the automaton
    takes its counted byte-walk path instead of the bulk regex scan — the
    differential suite guarantees the two are semantically identical.

``cells``
    the (env × technique) coverage matrix: while an experiment pins a cell
    context via :meth:`cell_context`, rule hits are *also* attributed to
    that cell, giving the dashboard its coverage matrix.

Like every obs facility the module-level :data:`COVERAGE` is ``None`` by
default and instrumented sites guard with one ``is not None`` check.  The
recorder is shared across worker threads (a lock keeps concurrent bumps
exact and the cell context is thread-local so parallel env columns do not
cross-attribute); process workers record into a fresh recorder and ship a
:meth:`dump` home for :meth:`merge_dump`, mirroring the metrics registry.
"""

from __future__ import annotations

import hashlib
import json
import threading
from contextlib import contextmanager
from typing import Iterable, Iterator

#: Schema version stamped into every snapshot so downstream consumers can
#: reject snapshots produced by an incompatible recorder.
COVERAGE_SCHEMA_VERSION = 1


def ruleset_scope(rule_names: Iterable[str]) -> str:
    """A stable scope label for a rule list, from its names in order.

    Rule universes are identified by content, not object identity: engines
    built from the same catalog in different processes must land their hits
    in the same scope for :meth:`CoverageRecorder.merge_dump` to sum them.
    """
    h = hashlib.sha256()
    for name in rule_names:
        encoded = name.encode("utf-8")
        h.update(len(encoded).to_bytes(4, "big"))
        h.update(encoded)
    return f"ruleset:{h.hexdigest()[:12]}"


def automaton_digest(patterns: Iterable[bytes]) -> str:
    """A short stable identity for an interned automaton's pattern set.

    sha256 over the sorted patterns (the interning key), truncated: stable
    across processes and platforms, unlike ``id()`` or ``hash()``.
    """
    h = hashlib.sha256()
    for pattern in sorted(patterns):
        h.update(len(pattern).to_bytes(4, "big"))
        h.update(pattern)
    return h.hexdigest()[:16]


class CoverageRecorder:
    """Per-rule and per-automaton-state/edge hit counters."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._local = threading.local()
        # scope -> tuple of rule names (the registered universe)
        self.universe: dict[str, tuple[str, ...]] = {}
        # "scope/rule" -> hit count
        self.rule_hits: dict[str, int] = {}
        # digest -> {"states": int, "patterns": int,
        #            "state_hits": [int]*states, "edge_hits": [int]*states}
        self.automata: dict[str, dict] = {}
        # (env, technique) -> {"scope/rule": hits}
        self.cells: dict[tuple[str, str], dict[str, int]] = {}

    # ------------------------------------------------------------------
    # registration (idempotent; engines call this when COVERAGE is live)
    # ------------------------------------------------------------------
    def register_rules(self, scope: str, rule_names: Iterable[str]) -> None:
        """Declare *scope*'s rule universe so dead rules are reportable."""
        names = tuple(rule_names)
        with self._lock:
            self.universe[scope] = names
            for name in names:
                self.rule_hits.setdefault(f"{scope}/{name}", 0)

    def register_automaton(self, digest: str, states: int, patterns: int) -> None:
        """Declare an automaton's state space (idempotent per digest)."""
        with self._lock:
            if digest not in self.automata:
                self.automata[digest] = {
                    "states": states,
                    "patterns": patterns,
                    "state_hits": [0] * states,
                    "edge_hits": [0] * states,
                }

    # ------------------------------------------------------------------
    # recording (called only behind an ``is not None`` guard)
    # ------------------------------------------------------------------
    def rule_hit(self, scope: str, rule_name: str) -> None:
        """Count one verdict-winning match of *rule_name* in *scope*."""
        key = f"{scope}/{rule_name}"
        cell = getattr(self._local, "cell", None)
        with self._lock:
            self.rule_hits[key] = self.rule_hits.get(key, 0) + 1
            if cell is not None:
                bucket = self.cells.setdefault(cell, {})
                bucket[key] = bucket.get(key, 0) + 1

    def automaton_walk(self, digest: str, nodes: list[int], edges: int) -> None:
        """Fold one counted byte-walk into automaton *digest*'s arrays.

        *nodes* lists every state visited (including revisits); *edges*
        counts goto-edge traversals (fail-link hops excluded: they revisit
        already-counted states without consuming input).
        """
        with self._lock:
            entry = self.automata.get(digest)
            if entry is None:  # walk on an unregistered automaton: ignore
                return
            state_hits = entry["state_hits"]
            for node in nodes:
                state_hits[node] += 1
            entry["edges_walked"] = entry.get("edges_walked", 0) + edges

    def automaton_visit(self, digest: str, node: int) -> None:
        """Count a single state visit (the inline streaming path)."""
        with self._lock:
            entry = self.automata.get(digest)
            if entry is not None:
                entry["state_hits"][node] += 1

    # ------------------------------------------------------------------
    # cell context (thread-local: parallel env columns stay separate)
    # ------------------------------------------------------------------
    @contextmanager
    def cell_context(self, env: str, technique: str) -> Iterator[None]:
        """Attribute rule hits inside the block to the (env, technique) cell."""
        previous = getattr(self._local, "cell", None)
        self._local.cell = (env, technique)
        try:
            yield
        finally:
            self._local.cell = previous

    # ------------------------------------------------------------------
    # readout
    # ------------------------------------------------------------------
    def exercised(self, scope: str) -> tuple[str, ...]:
        """Rules in *scope* with at least one hit, in registered order."""
        return tuple(
            name
            for name in self.universe.get(scope, ())
            if self.rule_hits.get(f"{scope}/{name}", 0) > 0
        )

    def dead(self, scope: str) -> tuple[str, ...]:
        """Registered rules in *scope* that were never hit."""
        return tuple(
            name
            for name in self.universe.get(scope, ())
            if self.rule_hits.get(f"{scope}/{name}", 0) == 0
        )

    def snapshot(self) -> dict:
        """Everything, as one sorted JSON-ready dict (the ``coverage.json``
        artifact and the dashboard's coverage model)."""
        with self._lock:
            scopes = {}
            for scope in sorted(self.universe):
                names = self.universe[scope]
                hits = {
                    name: self.rule_hits.get(f"{scope}/{name}", 0)
                    for name in names
                }
                scopes[scope] = {
                    "rules": len(names),
                    "exercised": sum(1 for n in names if hits[n] > 0),
                    "dead": sorted(n for n in names if hits[n] == 0),
                    "hits": dict(sorted(hits.items())),
                }
            automata = {}
            for digest in sorted(self.automata):
                entry = self.automata[digest]
                state_hits = entry["state_hits"]
                automata[digest] = {
                    "states": entry["states"],
                    "patterns": entry["patterns"],
                    "states_visited": sum(1 for n in state_hits if n > 0),
                    "state_visits": sum(state_hits),
                    "edges_walked": entry.get("edges_walked", 0),
                }
            matrix = {}
            for (env, technique) in sorted(self.cells):
                bucket = self.cells[(env, technique)]
                matrix[f"{env}×{technique}"] = {
                    "env": env,
                    "technique": technique,
                    "rule_hits": sum(bucket.values()),
                    "rules": dict(sorted(bucket.items())),
                }
            return {
                "schema": COVERAGE_SCHEMA_VERSION,
                "scopes": scopes,
                "automata": automata,
                "matrix": matrix,
                "total_rule_hits": sum(
                    self.rule_hits.get(f"{scope}/{name}", 0)
                    for scope, names in self.universe.items()
                    for name in names
                ),
            }

    def render(self) -> str:
        """Human-readable coverage report (the ``obs coverage`` output)."""
        return format_snapshot(self.snapshot())

    def reset(self) -> None:
        """Zero every counter but keep registered universes."""
        with self._lock:
            for key in self.rule_hits:
                self.rule_hits[key] = 0
            for entry in self.automata.values():
                entry["state_hits"] = [0] * entry["states"]
                entry["edge_hits"] = [0] * entry["states"]
                entry.pop("edges_walked", None)
            self.cells.clear()

    # ------------------------------------------------------------------
    # cross-process merging (the worker-pool snapshot path)
    # ------------------------------------------------------------------
    def dump(self) -> dict:
        """A lossless, picklable export (what process workers ship home)."""
        with self._lock:
            return {
                "universe": {k: list(v) for k, v in self.universe.items()},
                "rule_hits": dict(self.rule_hits),
                "automata": {
                    digest: {
                        "states": entry["states"],
                        "patterns": entry["patterns"],
                        "state_hits": list(entry["state_hits"]),
                        "edges_walked": entry.get("edges_walked", 0),
                    }
                    for digest, entry in self.automata.items()
                },
                "cells": {
                    f"{env}\t{technique}": dict(bucket)
                    for (env, technique), bucket in self.cells.items()
                },
            }

    def merge_dump(self, dump: dict) -> None:
        """Fold one worker's :meth:`dump` into this recorder.

        Universes union (idempotent registration), counters add — merged
        in sorted key order so the result is deterministic and, for a
        clean run, identical to a serial run's recorder.
        """
        with self._lock:
            for scope, names in sorted(dump.get("universe", {}).items()):
                self.universe.setdefault(scope, tuple(names))
            for key, hits in sorted(dump.get("rule_hits", {}).items()):
                self.rule_hits[key] = self.rule_hits.get(key, 0) + hits
            for digest, entry in sorted(dump.get("automata", {}).items()):
                mine = self.automata.get(digest)
                if mine is None:
                    mine = self.automata[digest] = {
                        "states": entry["states"],
                        "patterns": entry["patterns"],
                        "state_hits": [0] * entry["states"],
                        "edge_hits": [0] * entry["states"],
                    }
                for index, n in enumerate(entry["state_hits"]):
                    mine["state_hits"][index] += n
                mine["edges_walked"] = (
                    mine.get("edges_walked", 0) + entry.get("edges_walked", 0)
                )
            for key, bucket in sorted(dump.get("cells", {}).items()):
                env, technique = key.split("\t", 1)
                mine_bucket = self.cells.setdefault((env, technique), {})
                for rule, hits in sorted(bucket.items()):
                    mine_bucket[rule] = mine_bucket.get(rule, 0) + hits


def load_snapshot(path: str) -> dict:
    """Read a ``coverage.json`` snapshot, validating its schema version."""
    with open(path, "r", encoding="utf-8") as handle:
        snap = json.load(handle)
    schema = snap.get("schema")
    if schema != COVERAGE_SCHEMA_VERSION:
        raise ValueError(
            f"coverage snapshot schema {schema!r} != supported "
            f"{COVERAGE_SCHEMA_VERSION}"
        )
    return snap


def format_snapshot(snap: dict) -> str:
    """Render a loaded snapshot the same way a live recorder would."""
    lines = [f"rule coverage (schema v{snap['schema']})"]
    for scope, info in snap.get("scopes", {}).items():
        lines.append(
            f"  {scope}: {info['exercised']}/{info['rules']} rules exercised"
        )
        for name, hits in info.get("hits", {}).items():
            marker = " " if hits else "!"
            lines.append(f"    {marker} {name:32s} {hits}")
    for digest, info in snap.get("automata", {}).items():
        lines.append(
            f"  automaton {digest}: {info['states_visited']}/{info['states']} "
            f"states visited, {info['state_visits']} visits, "
            f"{info['edges_walked']} edges walked"
        )
    if snap.get("matrix"):
        lines.append("  coverage matrix (env × technique):")
        for key, cell in snap["matrix"].items():
            lines.append(f"    {key:44s} {cell['rule_hits']} rule hits")
    if len(lines) == 1:
        lines.append("  (no coverage recorded)")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# the module-level recorder (None = coverage disabled, the default)
# ----------------------------------------------------------------------
COVERAGE: CoverageRecorder | None = None


def enable_coverage() -> CoverageRecorder:
    """Install a fresh process-wide coverage recorder and return it."""
    global COVERAGE
    COVERAGE = CoverageRecorder()
    return COVERAGE


def disable_coverage() -> None:
    """Remove the process-wide coverage recorder."""
    global COVERAGE
    COVERAGE = None


@contextmanager
def covering() -> Iterator[CoverageRecorder]:
    """Scoped coverage collection: enable on entry, restore previous on exit."""
    global COVERAGE
    previous = COVERAGE
    recorder = CoverageRecorder()
    COVERAGE = recorder
    try:
        yield recorder
    finally:
        COVERAGE = previous
