"""Benchmark history: a rolling record of BENCH_*.json runs, plus checks.

``benchmarks/results/BENCH_history.jsonl`` accumulates one entry per
benchmark run (the BENCH payload minus its bulky ``profile`` section).
:func:`check_regressions` compares a fresh set of BENCH payloads against
that history and flags

* **slowdowns** — current wall-clock seconds beyond a noise band above the
  median of the recorded runs (timings are noisy; medians are not),
* **throughput drops** — current ``packets_per_second`` below the recorded
  median by more than the same noise band; unlike raw seconds this is
  packet-normalized, so a workload that grew legitimately does not mask a
  real per-packet regression (and vice versa),
* **memory blow-ups** — current ``peak_rss_kb`` beyond a (separate, wider)
  band above the recorded median: peak RSS is far less noisy than wall
  clock, so a sustained jump means a bounded structure stopped being
  bounded, and
* **determinism breaks** — keys that must never change between runs
  (replay rounds, paper agreement) differing from the last recorded entry.

The history is a JSON-lines file so appends are cheap and diffs are
line-oriented; :func:`append_entries` keeps a rolling window per benchmark
name so the file never grows without bound.  ``benchmarks/watchdog.py`` is
the CLI wrapper CI runs.
"""

from __future__ import annotations

import json
import statistics
from dataclasses import dataclass
from pathlib import Path

#: Keys whose values are seeded-deterministic: any change vs. the last
#: recorded run is a behaviour change, not noise.  ``evictions``/``sheds``
#: come from the scale benchmark's seeded churn: same config, same counts.
DETERMINISTIC_KEYS = ("rounds", "paper_agreement", "evictions", "sheds")

#: Default rolling-window length per benchmark name.
DEFAULT_WINDOW = 50

#: Default noise band: seconds beyond median * (1 + threshold) flag.
DEFAULT_THRESHOLD = 0.25

#: Noise band for ``peak_rss_kb``: beyond median * (1 + this) flags.
#: Allocator and interpreter variance stays within a few percent; a 25%
#: jump in peak RSS is a leak or an unbounded table, not noise.
RSS_THRESHOLD = 0.25

#: Noise band for ``verdict_p99_ms``: beyond median * (1 + this) flags.
#: Tail latency on shared CI runners is the noisiest number we track —
#: a scheduler hiccup doubles a single p99 sample — so the band is wide;
#: it exists to catch an order-of-magnitude serving regression, while the
#: live SLO in :mod:`repro.obs.ops` handles operational targets.
LATENCY_THRESHOLD = 1.0

#: Noise band for ``coverage_overhead_ratio``: beyond median * (1 + this)
#: flags.  The counted automaton walk replaces the bulk regex scan, so the
#: ratio sits well above 1x by design; the watchdog exists to catch it
#: *drifting* — a regression that doubles the coverage tax would silently
#: discourage ever profiling coverage in CI.
COVERAGE_THRESHOLD = 1.0

#: BENCH files that are not per-run payloads (regression baseline, the
#: history itself) and therefore never enter the history.
EXCLUDED_STEMS = ("BENCH_baseline", "BENCH_history")


@dataclass
class RegressionFlag:
    """One detected regression, ready for the watchdog's report."""

    bench: str
    key: str
    baseline: object
    current: object
    ratio: float | None
    message: str

    def as_dict(self) -> dict:
        return {
            "bench": self.bench,
            "key": self.key,
            "baseline": self.baseline,
            "current": self.current,
            "ratio": self.ratio,
            "message": self.message,
        }


def entry_from_bench(payload: dict, timestamp: float | None = None) -> dict:
    """A history entry for one BENCH payload: the payload sans ``profile``.

    *timestamp* (epoch seconds) is recorded as ``ts`` when given; the seed
    history omits it so the committed file stays byte-deterministic.
    """
    entry = {key: value for key, value in payload.items() if key != "profile"}
    if timestamp is not None:
        entry["ts"] = round(timestamp, 3)
    return entry


def load_history(path: str | Path) -> dict[str, list[dict]]:
    """History entries grouped by benchmark name, in recorded order."""
    history: dict[str, list[dict]] = {}
    path = Path(path)
    if not path.exists():
        return history
    with path.open(encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            entry = json.loads(line)
            history.setdefault(entry.get("name", "?"), []).append(entry)
    return history


def append_entries(
    path: str | Path, entries: list[dict], window: int = DEFAULT_WINDOW
) -> dict[str, list[dict]]:
    """Append *entries* to the history file, trimming each name's window.

    The file is rewritten grouped by name (names sorted, entries oldest
    first) so successive appends produce clean line diffs.  Returns the
    resulting grouped history.
    """
    history = load_history(path)
    for entry in entries:
        history.setdefault(entry.get("name", "?"), []).append(entry)
    for name, recorded in history.items():
        if len(recorded) > window:
            history[name] = recorded[-window:]
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    lines = []
    for name in sorted(history):
        for entry in history[name]:
            lines.append(json.dumps(entry, sort_keys=True))
    path.write_text("\n".join(lines) + "\n" if lines else "")
    return history


def collect_bench_payloads(
    results_dir: str | Path, benches: list[str] | None = None
) -> dict[str, dict]:
    """Current ``BENCH_<name>.json`` payloads by name (baseline excluded).

    *benches* restricts collection to the named benchmarks.
    """
    payloads: dict[str, dict] = {}
    for path in sorted(Path(results_dir).glob("BENCH_*.json")):
        if path.stem in EXCLUDED_STEMS:
            continue
        payload = json.loads(path.read_text())
        name = payload.get("name", path.stem.removeprefix("BENCH_"))
        if benches is not None and name not in benches:
            continue
        payloads[name] = payload
    return payloads


def check_regressions(
    history: dict[str, list[dict]],
    current: dict[str, dict],
    threshold: float = DEFAULT_THRESHOLD,
) -> list[RegressionFlag]:
    """Flag slowdowns and determinism breaks in *current* vs. *history*.

    A benchmark with no recorded history is skipped (first run seeds it).
    Wall-clock seconds compare against the **median** of recorded runs —
    strictly beyond ``median * (1 + threshold)`` flags, so the default 0.25
    band catches a 30% slowdown while absorbing ordinary timer noise.
    Throughput applies the same band inverted: ``packets_per_second`` below
    ``median / (1 + threshold)`` flags (a >=25% drop under the default).
    """
    flags: list[RegressionFlag] = []
    for name in sorted(current):
        recorded = history.get(name)
        if not recorded:
            continue
        payload = current[name]
        seconds = payload.get("seconds")
        past = [e["seconds"] for e in recorded if isinstance(e.get("seconds"), (int, float))]
        if isinstance(seconds, (int, float)) and past:
            baseline = statistics.median(past)
            if baseline > 0 and seconds > baseline * (1.0 + threshold):
                ratio = seconds / baseline
                flags.append(
                    RegressionFlag(
                        bench=name,
                        key="seconds",
                        baseline=round(baseline, 4),
                        current=seconds,
                        ratio=round(ratio, 3),
                        message=(
                            f"{name}: {seconds:.4f}s is {ratio:.2f}x the "
                            f"history median {baseline:.4f}s "
                            f"(threshold {1.0 + threshold:.2f}x over {len(past)} runs)"
                        ),
                    )
                )
        pps = payload.get("packets_per_second")
        past_pps = [
            e["packets_per_second"]
            for e in recorded
            if isinstance(e.get("packets_per_second"), (int, float))
        ]
        if isinstance(pps, (int, float)) and past_pps:
            baseline = statistics.median(past_pps)
            if pps > 0 and baseline > pps * (1.0 + threshold):
                ratio = pps / baseline
                flags.append(
                    RegressionFlag(
                        bench=name,
                        key="packets_per_second",
                        baseline=round(baseline, 1),
                        current=pps,
                        ratio=round(ratio, 3),
                        message=(
                            f"{name}: {pps:.1f} pkt/s is {ratio:.2f}x the "
                            f"history median {baseline:.1f} pkt/s "
                            f"(floor {1.0 / (1.0 + threshold):.2f}x over {len(past_pps)} runs)"
                        ),
                    )
                )
        rss = payload.get("peak_rss_kb")
        past_rss = [
            e["peak_rss_kb"] for e in recorded if isinstance(e.get("peak_rss_kb"), (int, float))
        ]
        if isinstance(rss, (int, float)) and past_rss:
            baseline = statistics.median(past_rss)
            if baseline > 0 and rss > baseline * (1.0 + RSS_THRESHOLD):
                ratio = rss / baseline
                flags.append(
                    RegressionFlag(
                        bench=name,
                        key="peak_rss_kb",
                        baseline=round(baseline, 1),
                        current=rss,
                        ratio=round(ratio, 3),
                        message=(
                            f"{name}: peak RSS {rss} KiB is {ratio:.2f}x the "
                            f"history median {baseline:.0f} KiB "
                            f"(threshold {1.0 + RSS_THRESHOLD:.2f}x over "
                            f"{len(past_rss)} runs)"
                        ),
                    )
                )
        p99 = payload.get("verdict_p99_ms")
        past_p99 = [
            e["verdict_p99_ms"]
            for e in recorded
            if isinstance(e.get("verdict_p99_ms"), (int, float))
        ]
        if isinstance(p99, (int, float)) and past_p99:
            baseline = statistics.median(past_p99)
            if baseline > 0 and p99 > baseline * (1.0 + LATENCY_THRESHOLD):
                ratio = p99 / baseline
                flags.append(
                    RegressionFlag(
                        bench=name,
                        key="verdict_p99_ms",
                        baseline=round(baseline, 3),
                        current=p99,
                        ratio=round(ratio, 3),
                        message=(
                            f"{name}: verdict p99 {p99:.1f}ms is {ratio:.2f}x "
                            f"the history median {baseline:.1f}ms "
                            f"(threshold {1.0 + LATENCY_THRESHOLD:.2f}x over "
                            f"{len(past_p99)} runs)"
                        ),
                    )
                )
        cov = payload.get("coverage_overhead_ratio")
        past_cov = [
            e["coverage_overhead_ratio"]
            for e in recorded
            if isinstance(e.get("coverage_overhead_ratio"), (int, float))
        ]
        if isinstance(cov, (int, float)) and past_cov:
            baseline = statistics.median(past_cov)
            if baseline > 0 and cov > baseline * (1.0 + COVERAGE_THRESHOLD):
                ratio = cov / baseline
                flags.append(
                    RegressionFlag(
                        bench=name,
                        key="coverage_overhead_ratio",
                        baseline=round(baseline, 3),
                        current=cov,
                        ratio=round(ratio, 3),
                        message=(
                            f"{name}: coverage overhead {cov:.2f}x is "
                            f"{ratio:.2f}x the history median {baseline:.2f}x "
                            f"(threshold {1.0 + COVERAGE_THRESHOLD:.2f}x over "
                            f"{len(past_cov)} runs)"
                        ),
                    )
                )
        last = recorded[-1]
        for key in DETERMINISTIC_KEYS:
            if key in payload and key in last and payload[key] != last[key]:
                flags.append(
                    RegressionFlag(
                        bench=name,
                        key=key,
                        baseline=last[key],
                        current=payload[key],
                        ratio=None,
                        message=(
                            f"{name}: deterministic key {key!r} changed "
                            f"{last[key]!r} -> {payload[key]!r}"
                        ),
                    )
                )
    return flags


def format_flags(flags: list[RegressionFlag]) -> str:
    """Terminal rendering of a check's outcome."""
    if not flags:
        return "benchmark watchdog: no regressions flagged"
    lines = [f"benchmark watchdog: {len(flags)} regression(s) flagged"]
    for flag in flags:
        lines.append(f"  [{flag.bench}/{flag.key}] {flag.message}")
    return "\n".join(lines)


def run_watch(
    results_dir: str | Path,
    history_path: str | Path | None = None,
    threshold: float = DEFAULT_THRESHOLD,
    benches: list[str] | None = None,
    append: bool = False,
    window: int = DEFAULT_WINDOW,
    json_output: bool = False,
    timestamp: float | None = None,
) -> int:
    """The whole watchdog check, shared by ``benchmarks/watchdog.py`` and
    ``liberate obs watch``: load history, compare, print, optionally append.

    Returns the process exit code: 0 clean, 1 flagged, 2 when a requested
    benchmark has no BENCH payload on disk.
    """
    import sys

    if history_path is None:
        history_path = Path(results_dir) / "BENCH_history.jsonl"
    history = load_history(history_path)
    current = collect_bench_payloads(results_dir, benches)
    if benches:
        missing = sorted(set(benches) - set(current))
        if missing:
            print(f"watchdog: no BENCH payload for: {', '.join(missing)}", file=sys.stderr)
            return 2
    flags = check_regressions(history, current, threshold=threshold)
    if json_output:
        print(
            json.dumps(
                {
                    "checked": sorted(current),
                    "threshold": threshold,
                    "flags": [flag.as_dict() for flag in flags],
                },
                indent=2,
                sort_keys=True,
            )
        )
    else:
        print(format_flags(flags))
    if append:
        entries = [
            entry_from_bench(current[name], timestamp=timestamp) for name in sorted(current)
        ]
        append_entries(history_path, entries, window=window)
        if not json_output:
            print(f"appended {len(entries)} history entries to {history_path}")
    return 1 if flags else 0
