"""Differential trace diffing: *why* did the same flow end differently?

The methodology follows the paper's framing — a middlebox is characterized
by where its behaviour *diverges* from a reference.  Given two traces of
the same workload (baseline vs. evasion attempt, environment A vs. B,
yesterday's golden artifact vs. today's run), :func:`diff_traces` aligns
them on their structural skeletons and reports:

* the **first structural divergence** — the earliest event where the two
  causal chains stop matching (which hop, which event kind);
* the **first decision divergence** — the earliest differing *decision*
  event (rule match, anchor check, classifier verdict, replay verdict,
  experiment cell), which is the line that answers "why did this evasion
  fail here";
* count deltas per event kind, per rule, and per verdict.

Comparison uses :func:`repro.obs.trace.structural_view` (kinds, elements,
rules, verdicts, reasons, actions — never timestamps, ports or byte
counts), so two runs under different seeds still align as long as they
behave the same.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.obs.analyze import DECISION_KINDS
from repro.obs.trace import structural_view

#: Decision events are compared on the structural fields plus the verdict
#: payload of driver cells (cc/rs/env/technique) — the columns of Table 3.
DECISION_FIELDS = (
    "kind",
    "element",
    "rule",
    "verdict",
    "reason",
    "action",
    "ok",
    "env",
    "technique",
    "cc",
    "rs",
)


@dataclass
class Divergence:
    """The first point where two aligned event sequences disagree.

    ``left``/``right`` are the projected events at the divergence point
    (None when that trace simply ended); ``context`` holds the last few
    *common* events before it — the shared causal prefix.
    """

    index: int
    left: dict | None
    right: dict | None
    context: list[dict] = field(default_factory=list)

    def describe(self) -> str:
        """One human line: ``left ... != right ...``."""

        def side(event: dict | None) -> str:
            if event is None:
                return "(trace ends)"
            return " ".join(f"{key}={value}" for key, value in event.items())

        return f"[{self.index}] {side(self.left)}  !=  {side(self.right)}"


@dataclass
class TraceDiff:
    """The outcome of aligning two traces."""

    left_events: int
    right_events: int
    first_divergence: Divergence | None
    first_decision_divergence: Divergence | None
    kind_delta: dict[str, tuple[int, int]]
    rule_delta: dict[str, tuple[int, int]]
    verdict_delta: dict[str, tuple[int, int]]

    @property
    def identical(self) -> bool:
        """True when the structural skeletons match event for event."""
        return self.first_divergence is None

    def as_dict(self) -> dict:
        """JSON-ready form (the CLI's ``--json`` output)."""

        def divergence(d: Divergence | None) -> dict | None:
            if d is None:
                return None
            return {
                "index": d.index,
                "left": d.left,
                "right": d.right,
                "context": d.context,
            }

        return {
            "identical": self.identical,
            "left_events": self.left_events,
            "right_events": self.right_events,
            "first_divergence": divergence(self.first_divergence),
            "first_decision_divergence": divergence(self.first_decision_divergence),
            "kind_delta": {k: list(v) for k, v in self.kind_delta.items()},
            "rule_delta": {k: list(v) for k, v in self.rule_delta.items()},
            "verdict_delta": {k: list(v) for k, v in self.verdict_delta.items()},
        }


def _first_divergence(
    left: list[dict], right: list[dict], context: int
) -> Divergence | None:
    limit = min(len(left), len(right))
    for index in range(limit):
        if left[index] != right[index]:
            return Divergence(
                index=index,
                left=left[index],
                right=right[index],
                context=left[max(0, index - context) : index],
            )
    if len(left) != len(right):
        longer = left if len(left) > len(right) else right
        return Divergence(
            index=limit,
            left=left[limit] if limit < len(left) else None,
            right=right[limit] if limit < len(right) else None,
            context=longer[max(0, limit - context) : limit],
        )
    return None


def _decision_view(events: list[dict]) -> list[dict]:
    """Project decision events onto their comparable fields, in order."""
    view = []
    for event in events:
        if event.get("kind") not in DECISION_KINDS:
            continue
        view.append(
            {
                key: event[key]
                for key in DECISION_FIELDS
                if key in event and event[key] is not None
            }
        )
    return view


def _tally(events: list[dict], key: str) -> dict[str, int]:
    counts: dict[str, int] = {}
    for event in events:
        value = event.get(key)
        if value is None:
            continue
        counts[str(value)] = counts.get(str(value), 0) + 1
    return counts


def _delta(left: dict[str, int], right: dict[str, int]) -> dict[str, tuple[int, int]]:
    keys = sorted(set(left) | set(right))
    return {
        key: (left.get(key, 0), right.get(key, 0))
        for key in keys
        if left.get(key, 0) != right.get(key, 0)
    }


def diff_traces(
    left: list[dict], right: list[dict], *, context: int = 3
) -> TraceDiff:
    """Align two traces (event-dict lists) and locate their divergences.

    *context* controls how many common preceding events each
    :class:`Divergence` carries for display.
    """
    left_structural = structural_view(left)
    right_structural = structural_view(right)
    rule_matches_left = [e for e in left if e.get("kind") == "mbx.rule_match"]
    rule_matches_right = [e for e in right if e.get("kind") == "mbx.rule_match"]
    verdicts_left = [e for e in left if e.get("kind") == "mbx.verdict"]
    verdicts_right = [e for e in right if e.get("kind") == "mbx.verdict"]
    return TraceDiff(
        left_events=len(left),
        right_events=len(right),
        first_divergence=_first_divergence(left_structural, right_structural, context),
        first_decision_divergence=_first_divergence(
            _decision_view(left), _decision_view(right), context
        ),
        kind_delta=_delta(_tally(left, "kind"), _tally(right, "kind")),
        rule_delta=_delta(
            _tally(rule_matches_left, "rule"), _tally(rule_matches_right, "rule")
        ),
        verdict_delta=_delta(
            _tally(verdicts_left, "verdict"), _tally(verdicts_right, "verdict")
        ),
    )


def explain(diff: TraceDiff, left_name: str = "left", right_name: str = "right") -> str:
    """The human diagnosis: where, and on which decision, the runs split.

    This is the "why did this evasion fail here" explainer: point it at a
    working baseline and the failing attempt and the first decision
    divergence names the rule match or verdict that sealed the outcome.
    """
    lines = [
        f"{left_name}: {diff.left_events} events; "
        f"{right_name}: {diff.right_events} events"
    ]
    if diff.identical:
        lines.append("traces are structurally identical")
        return "\n".join(lines)
    divergence = diff.first_divergence
    assert divergence is not None
    lines.append("")
    lines.append("first structural divergence:")
    for event in divergence.context:
        lines.append(f"    common: {' '.join(f'{k}={v}' for k, v in event.items())}")
    lines.append(f"  {divergence.describe()}")
    decision = diff.first_decision_divergence
    if decision is not None:
        lines.append("")
        lines.append("first diverging decision (rule match / verdict):")
        lines.append(f"  {decision.describe()}")
    if diff.rule_delta:
        lines.append("")
        lines.append("rule-match deltas:")
        for rule, (l, r) in diff.rule_delta.items():
            lines.append(f"  {rule}: {left_name}={l} {right_name}={r}")
    if diff.verdict_delta:
        lines.append("")
        lines.append("verdict deltas:")
        for verdict, (l, r) in diff.verdict_delta.items():
            lines.append(f"  {verdict}: {left_name}={l} {right_name}={r}")
    if diff.kind_delta:
        lines.append("")
        lines.append("event-kind count deltas:")
        for kind, (l, r) in diff.kind_delta.items():
            lines.append(f"  {kind:32s} {left_name}={l} {right_name}={r}")
    return "\n".join(lines)
