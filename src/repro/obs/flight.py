"""The flight recorder: always-on sampled evidence for live anomalies.

Full tracing is an opt-in, experiment-grade facility — too heavy to leave
on while serving.  The flight recorder is the serving-grade complement: a
bounded ring of **sampled** per-connection records (1-in-N, byte-budgeted)
that costs almost nothing while things are healthy, and auto-dumps itself
to canonical JSONL the moment something degrades — ladder step-down,
circuit-breaker trip, shed-watermark crossing, p99 SLO breach — so the
evidence for "what just happened" survives without full-trace overhead.

Dump mechanics:

* Dumps fire **once per anomaly episode**.  A trip names an *episode* key
  (e.g. ``"overload"``); further trips on the same key are suppressed
  until :meth:`FlightRecorder.recover` closes it.  A 10 000-flow shed
  storm yields one dump, not 10 000.
* Dump files are trace-shaped JSONL: a ``trace.header`` line followed by
  one canonical-JSON record per line, so the existing analyze machinery
  (:class:`repro.obs.analyze.TraceIndex`, ``liberate obs query``/``diff``
  and the new ``liberate obs flight``) reads them unmodified.

Like every other obs facility the recorder is off by default: module-level
:data:`FLIGHT` is ``None`` and instrumented sites guard with one
``is not None`` check.  ``liberate serve`` turns it on (it is cheap enough
to be always-on *there* — that is the point).
"""

from __future__ import annotations

import json
import time
from collections import deque
from pathlib import Path

__all__ = [
    "FlightRecorder",
    "FLIGHT",
    "enable_flight",
    "disable_flight",
]


def _canonical(record: dict) -> str:
    return json.dumps(record, sort_keys=True, separators=(",", ":"))


class FlightRecorder:
    """A bounded, sampled ring of records that dumps itself on anomalies.

    Args:
        out_dir: directory dump files are written into.
        capacity: maximum records kept in the ring.
        sample_every: keep 1 record in N offered to :meth:`note` (the
            first offer is always kept; trips are never sampled away).
        byte_budget: maximum serialized bytes the ring may hold; oldest
            records are evicted first when over budget.
        name: dump filename stem (``<name>-<NNN>-<reason>.jsonl``).
    """

    def __init__(
        self,
        out_dir: str | Path = ".",
        capacity: int = 512,
        sample_every: int = 16,
        byte_budget: int = 64 * 1024,
        name: str = "flight",
    ) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        if sample_every < 1:
            raise ValueError(f"sample_every must be >= 1, got {sample_every}")
        if byte_budget < 256:
            raise ValueError(f"byte_budget must be >= 256, got {byte_budget}")
        self.out_dir = Path(out_dir)
        self.capacity = capacity
        self.sample_every = sample_every
        self.byte_budget = byte_budget
        self.name = name
        self._ring: deque[str] = deque()
        self._ring_bytes = 0
        self._offered = 0
        self._sampled = 0
        self._evicted = 0
        self._seq = 0
        self._dumps = 0
        self._suppressed_trips = 0
        self._open_episodes: set[str] = set()
        self._dump_paths: list[str] = []

    # ------------------------------------------------------------------
    # the hot path
    # ------------------------------------------------------------------
    def note(self, kind: str, time_s: float = -1.0, **fields) -> bool:
        """Offer one record to the ring; kept 1-in-``sample_every``.

        Returns True when the record was sampled in.  *time_s* defaults to
        the wall clock — pass an explicit value for deterministic tests.
        """
        offer = self._offered
        self._offered += 1
        if offer % self.sample_every:
            return False
        self._append(kind, time_s, fields)
        self._sampled += 1
        return True

    def _append(self, kind: str, time_s: float, fields: dict) -> None:
        self._seq += 1
        record = dict(fields)
        record["seq"] = self._seq
        record["time"] = round(time.time() if time_s < 0 else time_s, 6)
        record["kind"] = kind
        line = _canonical(record)
        self._ring.append(line)
        self._ring_bytes += len(line) + 1
        while len(self._ring) > 1 and (
            len(self._ring) > self.capacity or self._ring_bytes > self.byte_budget
        ):
            dropped = self._ring.popleft()
            self._ring_bytes -= len(dropped) + 1
            self._evicted += 1

    # ------------------------------------------------------------------
    # anomaly episodes
    # ------------------------------------------------------------------
    def trip(
        self,
        reason: str,
        episode: str | None = None,
        time_s: float = -1.0,
        **fields,
    ) -> Path | None:
        """Dump the ring for *reason*, once per open *episode*.

        *episode* defaults to *reason*; while that episode stays open
        (until :meth:`recover`) further trips on it are counted but do not
        dump again.  Returns the dump path, or None when suppressed.
        """
        key = reason if episode is None else episode
        if key in self._open_episodes:
            self._suppressed_trips += 1
            return None
        self._open_episodes.add(key)
        self._append("flight.trip", time_s, {"reason": reason, "episode": key, **fields})
        return self._dump(reason)

    def recover(self, episode: str | None = None) -> None:
        """Close *episode* (or every open episode), re-arming its trigger."""
        if episode is None:
            self._open_episodes.clear()
        else:
            self._open_episodes.discard(episode)

    # ------------------------------------------------------------------
    # dumping
    # ------------------------------------------------------------------
    def _dump(self, reason: str) -> Path:
        slug = "".join(c if c.isalnum() else "-" for c in reason).strip("-") or "trip"
        self._dumps += 1
        path = self.out_dir / f"{self.name}-{self._dumps:03d}-{slug}.jsonl"
        header = _canonical(
            {
                "kind": "trace.header",
                "schema": 1,
                "events": len(self._ring),
                "dropped": self._evicted,
                "flight": {
                    "reason": reason,
                    "offered": self._offered,
                    "sampled": self._sampled,
                    "sample_every": self.sample_every,
                },
            }
        )
        self.out_dir.mkdir(parents=True, exist_ok=True)
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(header + "\n")
            for line in self._ring:
                handle.write(line + "\n")
        self._dump_paths.append(str(path))
        return path

    # ------------------------------------------------------------------
    # readout
    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """JSON-ready recorder state for ``/statusz`` and selfcheck."""
        return {
            "offered": self._offered,
            "sampled": self._sampled,
            "evicted": self._evicted,
            "ring_records": len(self._ring),
            "ring_bytes": self._ring_bytes,
            "sample_every": self.sample_every,
            "dumps": self._dumps,
            "suppressed_trips": self._suppressed_trips,
            "open_episodes": sorted(self._open_episodes),
            "dump_paths": list(self._dump_paths),
        }


# ----------------------------------------------------------------------
# the module-level recorder (None = flight recording disabled, the default)
# ----------------------------------------------------------------------
FLIGHT: FlightRecorder | None = None


def enable_flight(
    out_dir: str | Path = ".",
    capacity: int = 512,
    sample_every: int = 16,
    byte_budget: int = 64 * 1024,
    name: str = "flight",
) -> FlightRecorder:
    """Install a fresh process-wide flight recorder and return it."""
    global FLIGHT
    FLIGHT = FlightRecorder(
        out_dir, capacity=capacity, sample_every=sample_every,
        byte_budget=byte_budget, name=name,
    )
    return FLIGHT


def disable_flight() -> None:
    """Remove the process-wide flight recorder."""
    global FLIGHT
    FLIGHT = None
