"""Trace query engine: turn exported flow traces into answers.

The flight recorder (:mod:`repro.obs.trace`) captures *everything*; this
module answers the paper's actual questions from the data — which flow
triggered which rule, where packets were dropped and why, what verdict each
replay ended with.  A :class:`TraceIndex` loads an exported JSONL trace once
and indexes it three ways (event kind, flow, rule id), then serves:

* **queries** — filter by kind prefix / flow / rule / element
  (``liberate obs query``);
* **timelines** — every event a single flow touched, in causal order;
* **aggregates** — rule-hit, drop-reason, verdict and ARQ statistics
  rolled into one JSON-ready summary (``liberate obs report``, and
  ``LiberateReport.trace_summary`` when a pipeline runs traced).

Everything here is read-only over plain event dicts (the output of
:func:`repro.obs.trace.load_jsonl`), so it works equally on a live
tracer's events, a golden artifact, or a merged parallel shard trace.
"""

from __future__ import annotations

from typing import Iterable, Mapping

from repro.obs.trace import FlowTracer, load_jsonl

#: Event kinds that represent classifier / replay decisions — the events a
#: differential diagnosis (obs/diff.py) aligns on.
DECISION_KINDS = (
    "mbx.anchor",
    "mbx.rule_match",
    "mbx.verdict",
    "replay.verdict",
    "table3.cell",
    "figure4.sample",
)

#: Drop-shaped event kinds, grouped for the drop-reason aggregate.
DROP_KINDS = ("hop.drop", "fault.drop", "frag.expired")


def flow_of(event: Mapping) -> str | None:
    """The canonical flow key of an event, or None for flow-less events.

    Middlebox events carry an explicit ``flow`` field
    (``"client:sport>server:dport/proto"``); packet-level events are keyed
    from their header fields, flipped for server-to-client packets so both
    directions of a connection share one key.
    """
    flow = event.get("flow")
    if flow is not None:
        return flow
    src, sport = event.get("src"), event.get("sport")
    dst, dport = event.get("dst"), event.get("dport")
    if src is None or sport is None or dst is None or dport is None:
        return None
    proto = event.get("proto", "?")
    if event.get("dir") == "s2c":
        src, sport, dst, dport = dst, dport, src, sport
    return f"{src}:{sport}>{dst}:{dport}/{proto}"


class TraceIndex:
    """An exported trace, loaded once and queryable by kind / flow / rule.

    Args:
        events: header-free event dicts in trace order (what
            :func:`repro.obs.trace.load_jsonl` returns).
    """

    def __init__(self, events: list[dict]) -> None:
        self.events = events
        self._by_kind: dict[str, list[int]] = {}
        self._by_flow: dict[str, list[int]] = {}
        self._by_rule: dict[str, list[int]] = {}
        for position, event in enumerate(events):
            self._by_kind.setdefault(event.get("kind", "?"), []).append(position)
            flow = flow_of(event)
            if flow is not None:
                self._by_flow.setdefault(flow, []).append(position)
            rule = event.get("rule")
            if rule is not None:
                self._by_rule.setdefault(rule, []).append(position)

    @classmethod
    def load(cls, path: str) -> "TraceIndex":
        """Index an exported JSONL trace file (header line ignored)."""
        return cls(load_jsonl(path))

    @classmethod
    def from_tracer(cls, tracer: FlowTracer) -> "TraceIndex":
        """Index a live tracer's current ring-buffer contents."""
        return cls([event.as_dict() for event in tracer.events()])

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def kinds(self) -> dict[str, int]:
        """Event count per kind, sorted by kind."""
        return {kind: len(idx) for kind, idx in sorted(self._by_kind.items())}

    def flows(self) -> list[str]:
        """Every flow key seen, in first-appearance order."""
        return list(self._by_flow)

    def rules(self) -> list[str]:
        """Every rule id seen, in first-appearance order."""
        return list(self._by_rule)

    def query(
        self,
        kind: str | None = None,
        flow: str | None = None,
        rule: str | None = None,
        element: str | None = None,
        limit: int | None = None,
    ) -> list[dict]:
        """Events matching every given filter, in trace order.

        *kind* matches exactly or as a dotted prefix (``"mbx"`` selects all
        middlebox events); *flow*/*rule*/*element* match exactly, *flow*
        also as a substring so a bare port or address narrows the search.
        """
        results = []
        for event in self.events:
            if kind is not None:
                event_kind = event.get("kind", "")
                if not (event_kind == kind or event_kind.startswith(kind + ".")):
                    continue
            if flow is not None:
                event_flow = flow_of(event)
                if event_flow is None or (event_flow != flow and flow not in event_flow):
                    continue
            if rule is not None and event.get("rule") != rule:
                continue
            if element is not None and event.get("element") != element:
                continue
            results.append(event)
            if limit is not None and len(results) >= limit:
                break
        return results

    def timeline(self, flow: str) -> list[dict]:
        """Every event of one flow, in causal (trace) order.

        *flow* may be the exact key or any substring of it (a port, an
        address); an ambiguous substring raises ``ValueError`` naming the
        candidates.
        """
        if flow in self._by_flow:
            key = flow
        else:
            matches = [known for known in self._by_flow if flow in known]
            if not matches:
                return []
            if len(matches) > 1:
                raise ValueError(f"flow {flow!r} is ambiguous: {sorted(matches)}")
            key = matches[0]
        return [self.events[position] for position in self._by_flow[key]]

    # ------------------------------------------------------------------
    # aggregates
    # ------------------------------------------------------------------
    def rule_stats(self) -> dict[str, dict]:
        """Per-rule hit statistics: match count, actions taken, elements."""
        stats: dict[str, dict] = {}
        for rule, positions in sorted(self._by_rule.items()):
            matches = [
                self.events[p] for p in positions if self.events[p].get("kind") == "mbx.rule_match"
            ]
            actions: dict[str, int] = {}
            elements: set[str] = set()
            for event in matches:
                action = event.get("action")
                if action is not None:
                    actions[action] = actions.get(action, 0) + 1
                element = event.get("element")
                if element is not None:
                    elements.add(element)
            stats[rule] = {
                "matches": len(matches),
                "events": len(positions),
                "actions": dict(sorted(actions.items())),
                "elements": sorted(elements),
            }
        return stats

    def drop_stats(self) -> dict[str, int]:
        """Packet losses per ``kind:reason`` (router drops, faults, frag TTL)."""
        drops: dict[str, int] = {}
        for kind in DROP_KINDS:
            for position in self._by_kind.get(kind, ()):
                reason = self.events[position].get("reason", "unspecified")
                key = f"{kind}:{reason}"
                drops[key] = drops.get(key, 0) + 1
        return dict(sorted(drops.items()))

    def verdicts(self) -> dict[str, int]:
        """Classifier verdict tally (``mbx.verdict`` events)."""
        tally: dict[str, int] = {}
        for position in self._by_kind.get("mbx.verdict", ()):
            verdict = str(self.events[position].get("verdict"))
            tally[verdict] = tally.get(verdict, 0) + 1
        return dict(sorted(tally.items()))

    def arq_stats(self) -> dict[str, int]:
        """Replay-layer retransmission activity per ARQ event kind."""
        return {
            kind: len(positions)
            for kind, positions in sorted(self._by_kind.items())
            if kind.startswith("replay.arq")
        }

    def cells(self) -> list[dict]:
        """Experiment driver results recorded in the trace (table3/figure4)."""
        positions = list(self._by_kind.get("table3.cell", ())) + list(
            self._by_kind.get("figure4.sample", ())
        )
        return [self.events[p] for p in sorted(positions)]

    def summary(self) -> dict:
        """Everything aggregated into one JSON-ready dict (``obs report``)."""
        return {
            "events": len(self.events),
            "flows": len(self._by_flow),
            "kinds": self.kinds(),
            "rules": self.rule_stats(),
            "drops": self.drop_stats(),
            "verdicts": self.verdicts(),
            "arq": self.arq_stats(),
            "cells": self.cells(),
        }


def summarize_tracer(tracer: FlowTracer) -> dict:
    """One-call summary of a live tracer (``LiberateReport.trace_summary``)."""
    return TraceIndex.from_tracer(tracer).summary()


# ----------------------------------------------------------------------
# terminal rendering (the CLI's table output)
# ----------------------------------------------------------------------
def format_events(events: Iterable[dict]) -> str:
    """Render events as a fixed-width terminal table."""
    lines = [f"{'seq':>7s} {'time':>10s} {'kind':26s} {'where':22s} detail"]
    for event in events:
        detail = {
            key: value
            for key, value in event.items()
            if key not in ("seq", "time", "kind", "element", "flow") and value is not None
        }
        where = event.get("element") or flow_of(event) or ""
        time = event.get("time", -1.0)
        lines.append(
            f"{event.get('seq', '?'):>7} {time:>10} {event.get('kind', '?'):26s} "
            f"{str(where)[:22]:22s} "
            + " ".join(f"{key}={value}" for key, value in detail.items())
        )
    if len(lines) == 1:
        lines.append("(no matching events)")
    return "\n".join(lines)


def format_summary(summary: Mapping) -> str:
    """Render a :meth:`TraceIndex.summary` dict as a terminal report."""
    lines = [
        f"events: {summary['events']}   flows: {summary['flows']}",
        "",
        "event kinds:",
    ]
    for kind, count in summary["kinds"].items():
        lines.append(f"  {kind:32s} {count:>8d}")
    if summary["rules"]:
        lines.append("")
        lines.append("rule hits:")
        for rule, stats in summary["rules"].items():
            actions = ",".join(f"{a}x{n}" for a, n in stats["actions"].items()) or "-"
            lines.append(
                f"  {rule:32s} matches={stats['matches']} actions={actions} "
                f"at={','.join(stats['elements']) or '-'}"
            )
    if summary["drops"]:
        lines.append("")
        lines.append("drops:")
        for reason, count in summary["drops"].items():
            lines.append(f"  {reason:40s} {count:>6d}")
    if summary["verdicts"]:
        lines.append("")
        lines.append("verdicts:")
        for verdict, count in summary["verdicts"].items():
            lines.append(f"  {verdict:40s} {count:>6d}")
    if summary["arq"]:
        lines.append("")
        lines.append("replay ARQ:")
        for kind, count in summary["arq"].items():
            lines.append(f"  {kind:40s} {count:>6d}")
    if summary["cells"]:
        lines.append("")
        lines.append("experiment cells:")
        for cell in summary["cells"]:
            detail = {
                key: value
                for key, value in cell.items()
                if key not in ("seq", "time", "kind")
            }
            lines.append(
                f"  {cell['kind']:16s} "
                + " ".join(f"{key}={value}" for key, value in detail.items())
            )
    return "\n".join(lines)
