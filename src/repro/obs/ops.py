"""``repro.obs.ops`` — operational observability for the live serving path.

The rest of ``repro.obs`` is built for deterministic *experiments*: logical
clocks, byte-identical exports, golden traces.  A live ``liberate serve``
process needs the complementary, explicitly *wall-clock* layer that serving
stacks require and experiments forbid:

* :class:`LatencyRecorder` — a log-bucketed (HDR-style) latency histogram
  with O(1) record (fixed bucket count), geometric within-bucket percentile
  interpolation, and lossless merging, on the bucket layout shared with
  :meth:`repro.obs.metrics.Histogram.log_spaced`.
* :class:`OpsRegistry` — the process-wide home for named latency recorders
  and operational counters, enabled/disabled exactly like the other obs
  facilities (module-level :data:`OPS`, ``is not None`` guards, off by
  default).
* :class:`OpsServer` — a zero-dependency asyncio HTTP endpoint
  (``liberate serve --ops-port``) exposing ``/metrics`` (Prometheus text
  exposition over the metrics registry + latency recorders), ``/healthz``
  (ok/degraded/unhealthy from ladder state, shed rate and SLOs) and
  ``/statusz`` (full JSON snapshot).
* :class:`SLOPolicy` / :func:`evaluate_health` — declarative latency and
  degradation targets checked live (feeding ``/healthz`` and the flight
  recorder's SLO-breach trigger).

Everything here is wall-clock by design and therefore **segregated**: ops
series live in their own registry (and would carry the ``ops.`` namespace in
any shared store — see :data:`repro.obs.metrics.OPS_PREFIX`), so none of the
deterministic snapshot/golden-trace guarantees ever see a wall-clock number.
"""

from __future__ import annotations

import asyncio
import bisect
import json
import math
import re
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator

from repro.obs import flight as obs_flight
from repro.obs import metrics as obs_metrics
from repro.obs.metrics import LATENCY_BUCKETS

__all__ = [
    "LatencyRecorder",
    "OpsRegistry",
    "OpsServer",
    "SLOPolicy",
    "evaluate_health",
    "render_prometheus",
    "http_get",
    "OPS",
    "enable_ops",
    "disable_ops",
    "ops_recording",
]

#: Percentiles every latency summary reports (as ``p50_ms`` .. ``p999_ms``).
SUMMARY_PERCENTILES = (50.0, 90.0, 99.0, 99.9)


class LatencyRecorder:
    """A log-bucketed latency histogram: O(1) record, mergeable, percentiles.

    Values are **seconds** (summaries convert to milliseconds).  The bucket
    layout defaults to :data:`repro.obs.metrics.LATENCY_BUCKETS` (1µs..60s,
    five per decade), so relative quantile error is bounded by the bucket
    growth factor; :meth:`percentile` interpolates geometrically inside the
    resolved bucket and clamps to the exact observed min/max, which keeps
    p50 honest even when all observations share one bucket.
    """

    __slots__ = ("bounds", "counts", "count", "total", "min", "max")

    def __init__(self, bounds: tuple[float, ...] = LATENCY_BUCKETS) -> None:
        if len(bounds) < 2:
            raise ValueError("LatencyRecorder needs at least two bucket bounds")
        self.bounds = tuple(bounds)
        self.counts = [0] * (len(self.bounds) + 1)  # last slot = +inf
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = 0.0

    def record(self, seconds: float) -> None:
        """Record one latency sample (O(1): fixed bucket count)."""
        self.counts[bisect.bisect_left(self.bounds, seconds)] += 1
        self.count += 1
        self.total += seconds
        if seconds < self.min:
            self.min = seconds
        if seconds > self.max:
            self.max = seconds

    def percentile(self, p: float) -> float:
        """The *p*-th percentile (0-100) in seconds, log-interpolated.

        Empty recorders report 0.0.  The rank's bucket is resolved exactly
        as :meth:`repro.obs.metrics.Histogram.percentile` does; within the
        bucket the estimate interpolates geometrically by rank fraction and
        is clamped to the observed ``[min, max]`` envelope, so a recorder
        whose samples all landed in one bucket still reports values inside
        the real data range.
        """
        if not 0 <= p <= 100:
            raise ValueError(f"percentile must be in [0, 100], got {p}")
        if self.count == 0:
            return 0.0
        rank = max(1, math.ceil(p * self.count / 100))
        running = 0
        for index, n in enumerate(self.counts):
            if n == 0:
                continue
            before = running
            running += n
            if running < rank:
                continue
            if index >= len(self.bounds):  # overflow bucket
                return self.max
            high = self.bounds[index]
            low = self.bounds[index - 1] if index else high * (
                self.bounds[0] / self.bounds[1]
            )
            fraction = (rank - before) / n
            estimate = low * (high / low) ** fraction
            return min(max(estimate, self.min), self.max)
        return self.max  # pragma: no cover - unreachable (running == count)

    def merge(self, other: "LatencyRecorder") -> None:
        """Fold *other* into this recorder (shared bounds required)."""
        if other.bounds != self.bounds:
            raise ValueError(
                f"latency bucket layouts differ: {len(other.bounds)} vs "
                f"{len(self.bounds)} bounds"
            )
        for index, n in enumerate(other.counts):
            self.counts[index] += n
        self.count += other.count
        self.total += other.total
        if other.count:
            self.min = min(self.min, other.min)
            self.max = max(self.max, other.max)

    def summary(self) -> dict:
        """JSON-ready percentile summary in milliseconds."""
        out: dict[str, object] = {"count": self.count}
        if self.count == 0:
            return out
        out["mean_ms"] = round(self.total / self.count * 1000, 3)
        out["min_ms"] = round(self.min * 1000, 3)
        out["max_ms"] = round(self.max * 1000, 3)
        for p in SUMMARY_PERCENTILES:
            key = f"p{p:g}".replace(".", "") + "_ms"
            out[key] = round(self.percentile(p) * 1000, 3)
        return out

    def dump(self) -> dict:
        """Lossless, picklable export (the cross-process merge path)."""
        return {
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "count": self.count,
            "total": self.total,
            "min": None if self.count == 0 else self.min,
            "max": self.max,
        }

    def merge_dump(self, dump: dict) -> None:
        """Fold one :meth:`dump` into this recorder."""
        other = LatencyRecorder(tuple(dump["bounds"]))
        other.counts = list(dump["counts"])
        other.count = dump["count"]
        other.total = dump["total"]
        other.min = math.inf if dump.get("min") is None else dump["min"]
        other.max = dump.get("max", 0.0)
        self.merge(other)


class OpsRegistry:
    """Named latency recorders plus operational counters for one process.

    Instrumented sites (proxy, pool, engine) guard with ``OPS is not None``
    exactly like the tracer/metrics/profiler sites, so the disabled cost is
    one attribute load per site and the serving hot path pays nothing in
    experiment runs.
    """

    def __init__(self) -> None:
        self._latency: dict[str, LatencyRecorder] = {}
        self._counters: dict[str, float] = {}
        self._started_monotonic = time.monotonic()
        self._started_unix = time.time()

    # ------------------------------------------------------------------
    # recording (called only behind an ``is not None`` guard)
    # ------------------------------------------------------------------
    def record(self, name: str, seconds: float) -> None:
        """Record one latency sample into recorder *name* (created on use)."""
        recorder = self._latency.get(name)
        if recorder is None:
            recorder = self._latency[name] = LatencyRecorder()
        recorder.record(seconds)

    def inc(self, name: str, amount: float = 1) -> None:
        """Increment operational counter *name*."""
        self._counters[name] = self._counters.get(name, 0) + amount

    # ------------------------------------------------------------------
    # readout
    # ------------------------------------------------------------------
    def recorder(self, name: str) -> LatencyRecorder | None:
        """The named recorder, or None when nothing was recorded under it."""
        return self._latency.get(name)

    def recorders(self) -> dict[str, LatencyRecorder]:
        """All recorders by name (a copy; exposition iterates this)."""
        return dict(self._latency)

    def counters(self) -> dict[str, float]:
        return dict(self._counters)

    def uptime_seconds(self) -> float:
        return time.monotonic() - self._started_monotonic

    def latency_summaries(self, prefix: str | None = None) -> dict[str, dict]:
        """Percentile summaries per recorder, optionally prefix-filtered."""
        return {
            name: recorder.summary()
            for name, recorder in sorted(self._latency.items())
            if prefix is None or name.startswith(prefix)
        }

    def snapshot(self) -> dict:
        """The whole operational picture as one JSON-ready dict."""
        return {
            "started_unix": round(self._started_unix, 3),
            "uptime_seconds": round(self.uptime_seconds(), 3),
            "latency": self.latency_summaries(),
            "counters": dict(sorted(self._counters.items())),
        }


# ----------------------------------------------------------------------
# the module-level registry (None = ops recording disabled, the default)
# ----------------------------------------------------------------------
OPS: OpsRegistry | None = None


def enable_ops() -> OpsRegistry:
    """Install a fresh process-wide ops registry and return it."""
    global OPS
    OPS = OpsRegistry()
    return OPS


def disable_ops() -> None:
    """Remove the process-wide ops registry."""
    global OPS
    OPS = None


@contextmanager
def ops_recording() -> Iterator[OpsRegistry]:
    """Scoped ops recording: enable on entry, restore previous on exit."""
    global OPS
    previous = OPS
    registry = OpsRegistry()
    OPS = registry
    try:
        yield registry
    finally:
        OPS = previous


# ----------------------------------------------------------------------
# SLOs and health
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SLOPolicy:
    """Declarative serving targets behind ``/healthz`` and the watchdog.

    Attributes:
        verdict_p99_ms: p99 end-to-end verdict latency target in
            milliseconds (None disables the latency SLO).
        min_samples: latency samples required before the p99 SLO is judged
            (early percentiles are noise).
        max_shed_rate: shed fraction above which health is *degraded*; the
            default 0.0 means any shedding degrades (shedding is the
            system's own "I am over capacity" signal).
        unhealthy_shed_rate: shed fraction above which health is
            *unhealthy* — most admissions are being refused.
        max_error_rate: ``broken`` verdict fraction above which health is
            degraded (delivery is failing, not just classification).
        max_fullness: active/max_active fraction above which health is
            degraded even before shedding starts.
    """

    verdict_p99_ms: float | None = None
    min_samples: int = 16
    max_shed_rate: float = 0.0
    unhealthy_shed_rate: float = 0.5
    max_error_rate: float = 0.05
    max_fullness: float = 0.95

    def __post_init__(self) -> None:
        if self.verdict_p99_ms is not None and self.verdict_p99_ms <= 0:
            raise ValueError("verdict_p99_ms must be positive")
        if not 0.0 <= self.max_shed_rate <= 1.0:
            raise ValueError("max_shed_rate must be in [0, 1]")
        if not 0.0 < self.unhealthy_shed_rate <= 1.0:
            raise ValueError("unhealthy_shed_rate must be in (0, 1]")


def evaluate_health(
    snapshot: dict, slo: SLOPolicy, ops: OpsRegistry | None = None
) -> dict:
    """Judge a proxy snapshot against *slo*: ok / degraded / unhealthy.

    *snapshot* is :meth:`repro.core.proxy_server.ProxyServer.snapshot`
    output (or any dict with the same keys).  Every reason contributing to
    a non-ok status is listed, so ``/healthz`` is diagnosable, not a bare
    traffic light.
    """
    reasons: list[str] = []
    severity = 0  # 0 ok, 1 degraded, 2 unhealthy

    def degraded(reason: str) -> None:
        nonlocal severity
        reasons.append(reason)
        severity = max(severity, 1)

    def unhealthy(reason: str) -> None:
        nonlocal severity
        reasons.append(reason)
        severity = 2

    flows = snapshot.get("flows") or 0
    shed = snapshot.get("shed") or 0
    shed_rate = shed / flows if flows else 0.0
    broken = snapshot.get("broken") or 0
    error_rate = broken / flows if flows else 0.0
    ladder = snapshot.get("ladder") or {}
    active = snapshot.get("active") or 0
    max_active = snapshot.get("max_active") or 0
    fullness = active / max_active if max_active else 0.0

    if ladder.get("exhausted"):
        unhealthy("fallback ladder exhausted: serving undisguised best-effort")
    if shed_rate > slo.unhealthy_shed_rate:
        unhealthy(
            f"shed rate {shed_rate:.3f} above unhealthy threshold "
            f"{slo.unhealthy_shed_rate:.3f}"
        )
    elif shed_rate > slo.max_shed_rate:
        degraded(f"shedding active: {shed} of {flows} flows ({shed_rate:.3f})")
    if (ladder.get("rung") or 0) > 0 and not ladder.get("exhausted"):
        degraded(
            f"ladder stepped down to rung {ladder.get('rung')} "
            f"({ladder.get('active_technique')})"
        )
    if error_rate > slo.max_error_rate:
        degraded(f"broken-verdict rate {error_rate:.3f} above {slo.max_error_rate:.3f}")
    if fullness > slo.max_fullness:
        degraded(f"connection table {fullness:.2f} full (capacity {max_active})")

    p99_ms = None
    if ops is not None:
        recorder = ops.recorder("proxy.verdict")
        if recorder is not None and recorder.count >= slo.min_samples:
            p99_ms = round(recorder.percentile(99) * 1000, 3)
            if slo.verdict_p99_ms is not None and p99_ms > slo.verdict_p99_ms:
                degraded(
                    f"verdict p99 {p99_ms:.1f}ms breaches the "
                    f"{slo.verdict_p99_ms:.1f}ms SLO"
                )

    return {
        "status": ("ok", "degraded", "unhealthy")[severity],
        "reasons": reasons,
        "shed_rate": round(shed_rate, 4),
        "error_rate": round(error_rate, 4),
        "fullness": round(fullness, 4),
        "ladder_rung": ladder.get("rung", 0),
        "verdict_p99_ms": p99_ms,
    }


# ----------------------------------------------------------------------
# Prometheus text exposition
# ----------------------------------------------------------------------
_PROM_SANITIZE = re.compile(r"[^a-zA-Z0-9_]")


def _prom_name(name: str) -> str:
    return "liberate_" + _PROM_SANITIZE.sub("_", name)


def _prom_value(value: float) -> str:
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(float(value)) if isinstance(value, float) else str(value)


def _prom_histogram(
    name: str, bounds: tuple[float, ...], counts: list[int], total: float, count: int
) -> list[str]:
    lines = [f"# TYPE {name} histogram"]
    running = 0
    for bound, n in zip(bounds, counts):
        running += n
        lines.append(f'{name}_bucket{{le="{_prom_value(float(bound))}"}} {running}')
    lines.append(f'{name}_bucket{{le="+Inf"}} {count}')
    lines.append(f"{name}_sum {_prom_value(round(total, 9))}")
    lines.append(f"{name}_count {count}")
    return lines


def render_prometheus(
    registry: "obs_metrics.MetricsRegistry | None" = None,
    ops: OpsRegistry | None = None,
) -> str:
    """Both registries as Prometheus text exposition (version 0.0.4).

    Metric names are the dotted internal names with ``.`` folded to ``_``
    under a ``liberate_`` prefix; latency recorders render as histograms in
    seconds (``liberate_ops_<name>_seconds``) so standard latency tooling
    (``histogram_quantile``) works unmodified.
    """
    lines: list[str] = []
    if registry is not None:
        for name, value in sorted(registry.counters().items()):
            pname = _prom_name(name)
            lines.append(f"# TYPE {pname} counter")
            lines.append(f"{pname} {_prom_value(value)}")
        for name, value in sorted(registry.gauges().items()):
            pname = _prom_name(name)
            lines.append(f"# TYPE {pname} gauge")
            lines.append(f"{pname} {_prom_value(value)}")
        for name, histogram in sorted(registry.histograms().items()):
            lines.extend(
                _prom_histogram(
                    _prom_name(name),
                    histogram.bounds,
                    histogram.counts,
                    histogram.total,
                    histogram.count,
                )
            )
    if ops is not None:
        uptime = _prom_name("ops.uptime_seconds")
        lines.append(f"# TYPE {uptime} gauge")
        lines.append(f"{uptime} {_prom_value(round(ops.uptime_seconds(), 3))}")
        for name, value in sorted(ops.counters().items()):
            pname = _prom_name(f"ops.{name}")
            lines.append(f"# TYPE {pname} counter")
            lines.append(f"{pname} {_prom_value(value)}")
        for name, recorder in sorted(ops.recorders().items()):
            lines.extend(
                _prom_histogram(
                    _prom_name(f"ops.{name}") + "_seconds",
                    recorder.bounds,
                    recorder.counts,
                    recorder.total,
                    recorder.count,
                )
            )
    from repro.obs import coverage as obs_coverage

    if obs_coverage.COVERAGE is not None:
        snap = obs_coverage.COVERAGE.snapshot()
        scopes = snap.get("scopes", {})
        gauges = {
            "ops.coverage.rules_total": sum(s["rules"] for s in scopes.values()),
            "ops.coverage.rules_exercised": sum(
                s["exercised"] for s in scopes.values()
            ),
            "ops.coverage.rules_dead": sum(len(s["dead"]) for s in scopes.values()),
            "ops.coverage.rule_hits_total": snap.get("total_rule_hits", 0),
            "ops.coverage.automaton_states_visited": sum(
                a["states_visited"] for a in snap.get("automata", {}).values()
            ),
            "ops.coverage.automaton_edges_walked": sum(
                a["edges_walked"] for a in snap.get("automata", {}).values()
            ),
        }
        for name, value in gauges.items():
            pname = _prom_name(name)
            lines.append(f"# TYPE {pname} gauge")
            lines.append(f"{pname} {_prom_value(value)}")
    return "\n".join(lines) + "\n"


# ----------------------------------------------------------------------
# the ops endpoint
# ----------------------------------------------------------------------
class OpsServer:
    """A tiny zero-dependency asyncio HTTP server for operational surfaces.

    Routes:
        ``/metrics``  Prometheus text exposition (metrics registry + ops).
        ``/healthz``  health JSON; HTTP 200 for ok/degraded, 503 unhealthy.
        ``/statusz``  full JSON snapshot: stats, health, ops, uptime, RSS.

    The server shares the proxy's event loop — it must never block it, so
    every response is computed from in-memory state (no I/O, no locks).  An
    SLO p99 breach observed while answering ``/healthz`` trips the flight
    recorder (once per breach episode; the episode closes when the p99
    drops back under target).
    """

    def __init__(
        self,
        proxy,
        host: str = "127.0.0.1",
        port: int = 0,
        slo: SLOPolicy | None = None,
    ) -> None:
        self.proxy = proxy
        self.host = host
        self.port = port
        self.slo = slo if slo is not None else SLOPolicy()
        self._server: asyncio.AbstractServer | None = None

    @property
    def bound_port(self) -> int:
        if self._server is None:
            raise RuntimeError("ops server not started")
        return self._server.sockets[0].getsockname()[1]

    async def start(self) -> "OpsServer":
        self._server = await asyncio.start_server(self._handle, self.host, self.port)
        return self

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    # ------------------------------------------------------------------
    # surfaces
    # ------------------------------------------------------------------
    def health(self) -> dict:
        """Evaluate health now (also the SLO-breach flight trigger)."""
        report = evaluate_health(self.proxy.snapshot(), self.slo, OPS)
        flight = obs_flight.FLIGHT
        if flight is not None and self.slo.verdict_p99_ms is not None:
            p99 = report.get("verdict_p99_ms")
            if p99 is not None and p99 > self.slo.verdict_p99_ms:
                flight.trip(
                    "slo_p99",
                    episode="slo_p99",
                    p99_ms=p99,
                    target_ms=self.slo.verdict_p99_ms,
                )
            else:
                flight.recover("slo_p99")
        return report

    def statusz(self) -> dict:
        from repro.obs import profiling as obs_profiling

        report: dict[str, object] = {
            "stats": self.proxy.snapshot(),
            "health": self.health(),
            "peak_rss_kb": obs_profiling.peak_rss_kb(),
        }
        if OPS is not None:
            report["ops"] = OPS.snapshot()
        metrics = obs_metrics.METRICS
        if metrics is not None:
            report["metrics"] = metrics.snapshot(include_ops=True)
        flight = obs_flight.FLIGHT
        if flight is not None:
            report["flight"] = flight.stats()
        return report

    # ------------------------------------------------------------------
    # the HTTP loop
    # ------------------------------------------------------------------
    def _respond(self, path: str) -> tuple[int, str, str]:
        """(status code, content type, body) for one GET path."""
        if path == "/metrics":
            return (
                200,
                "text/plain; version=0.0.4; charset=utf-8",
                render_prometheus(obs_metrics.METRICS, OPS),
            )
        if path == "/healthz":
            health = self.health()
            code = 503 if health["status"] == "unhealthy" else 200
            return code, "application/json", json.dumps(health, sort_keys=True) + "\n"
        if path in ("/statusz", "/"):
            body = json.dumps(self.statusz(), indent=2, sort_keys=True) + "\n"
            return 200, "application/json", body
        return 404, "text/plain; charset=utf-8", f"no such route: {path}\n"

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            request = await reader.readline()
            while True:  # drain headers; routes take no request body
                line = await reader.readline()
                if line in (b"\r\n", b"\n", b""):
                    break
            parts = request.split()
            if len(parts) < 2 or parts[0] not in (b"GET", b"HEAD"):
                code, ctype, body = 405, "text/plain; charset=utf-8", "GET only\n"
            else:
                path = parts[1].decode("latin-1").split("?", 1)[0]
                code, ctype, body = self._respond(path)
                if parts[0] == b"HEAD":
                    body = ""
            payload = body.encode("utf-8")
            status = {200: "OK", 404: "Not Found", 405: "Method Not Allowed", 503: "Service Unavailable"}
            writer.write(
                (
                    f"HTTP/1.1 {code} {status.get(code, 'OK')}\r\n"
                    f"Content-Type: {ctype}\r\n"
                    f"Content-Length: {len(payload)}\r\n"
                    "Connection: close\r\n\r\n"
                ).encode("ascii")
                + payload
            )
            await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass


async def http_get(host: str, port: int, path: str) -> tuple[int, str]:
    """One bare GET round-trip: (status code, body).  Used by the selfcheck
    and the CI smoke job so neither needs an HTTP client dependency."""
    reader, writer = await asyncio.open_connection(host, port)
    try:
        writer.write(f"GET {path} HTTP/1.1\r\nHost: {host}\r\n\r\n".encode("ascii"))
        await writer.drain()
        raw = await reader.read()
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass
    head, _, body = raw.partition(b"\r\n\r\n")
    status_line = head.split(b"\r\n", 1)[0].split()
    code = int(status_line[1]) if len(status_line) >= 2 else 0
    return code, body.decode("utf-8", "replace")
