"""Flow tracing: the flight recorder behind ``--trace``.

The paper's contribution is *exposing* classification rules; a final verdict
alone does not explain **which** packet triggered **which** middlebox rule or
**why** an evasion worked.  The :class:`FlowTracer` records the whole causal
chain — hop traversals, fragment reassembly, rule evaluations (rule id,
matched byte range, stream watermark), classifier state transitions, and
replay-layer ARQ — into a bounded ring buffer exportable as JSON lines.

Design constraints, in priority order:

* **Disabled by default, near-zero overhead.**  The module-level
  :data:`TRACER` is ``None`` unless tracing was explicitly enabled;
  instrumented hot paths guard every emission with a single attribute load
  and ``is not None`` check, so the fault-free fast paths from PR 1 are
  untouched when tracing is off.
* **Deterministic output.**  Events carry virtual-clock time and a
  monotonically increasing sequence number — never wall-clock, object ids,
  or hash-randomized values — so a trace is byte-identical across two runs
  with the same seed and diffable as an artifact.
* **Bounded memory.**  The recorder is a ring buffer (default one million
  events); a trace of a pathological run drops the oldest events rather
  than exhausting memory.  ``dropped_events`` says how many were lost.

Tracing state is process-local, but traced runs no longer have to be
serial: :class:`~repro.runtime.pool.WorkerPool` detects an installed tracer
and runs each task under a fresh **shard** tracer (:func:`begin_shard` /
:func:`end_shard`), written to a per-task JSONL shard file and merged back
into the parent recorder in (task index, seq) order by
:func:`merge_shard_dir`.  Because a serial run emits each task's events
contiguously and in task order, the merged parallel trace is byte-identical
to the serial one.
"""

from __future__ import annotations

import json
import os
import threading
from collections import deque
from contextlib import contextmanager
from typing import IO, Iterable, Iterator

#: Bumped whenever an event kind or field is renamed or removed (additions
#: are backward-compatible and do not bump it).  Exported traces carry it so
#: old golden artifacts are never compared against a new schema silently.
TRACE_SCHEMA_VERSION = 1

#: Default ring-buffer capacity (events).
DEFAULT_CAPACITY = 1_000_000

#: Fields that identify an event structurally — the stable skeleton golden
#: tests compare.  Everything else (time, seq, ports, sizes) is allowed to
#: drift across refactors without invalidating a golden trace.
STRUCTURAL_FIELDS = ("kind", "element", "rule", "verdict", "reason", "action")


class TraceEvent:
    """One flight-recorder record.

    Attributes:
        seq: monotonically increasing per-tracer sequence number.
        time: virtual-clock seconds (deterministic; -1.0 when no clock is in
            scope, e.g. worker-pool scheduling events).
        kind: dotted event kind ("hop.traverse", "mbx.rule_match", ...).
        fields: flat JSON-serializable payload.
    """

    __slots__ = ("seq", "time", "kind", "fields")

    def __init__(self, seq: int, time: float, kind: str, fields: dict) -> None:
        self.seq = seq
        self.time = time
        self.kind = kind
        self.fields = fields

    def as_dict(self) -> dict:
        """The event as a plain JSON-ready dict (seq/time/kind first)."""
        record = {"seq": self.seq, "time": round(self.time, 6), "kind": self.kind}
        record.update(self.fields)
        return record

    def to_json(self) -> str:
        """One canonical JSON line (sorted keys, no whitespace)."""
        return json.dumps(self.as_dict(), sort_keys=True, separators=(",", ":"))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TraceEvent({self.seq}, {self.time}, {self.kind!r}, {self.fields!r})"


class FlowTracer:
    """A bounded flight recorder for :class:`TraceEvent` records.

    Args:
        capacity: ring-buffer size; the oldest events are dropped beyond it.
    """

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        self.capacity = capacity
        self._events: deque[TraceEvent] = deque(maxlen=capacity)
        self._seq = 0
        self.dropped_events = 0

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def emit(self, kind: str, time: float = -1.0, **fields: object) -> None:
        """Record one event (called only behind an ``is not None`` guard)."""
        if len(self._events) == self.capacity:
            self.dropped_events += 1
        self._events.append(TraceEvent(self._seq, time, kind, fields))
        self._seq += 1

    @contextmanager
    def span(self, name: str, time: float = -1.0, **fields: object) -> Iterator[None]:
        """A paired enter/exit event around a pipeline phase or driver stage."""
        self.emit("span.enter", time, span=name, **fields)
        try:
            yield
        finally:
            self.emit("span.exit", time, span=name)

    # ------------------------------------------------------------------
    # readout
    # ------------------------------------------------------------------
    def events(self, kind: str | None = None) -> list[TraceEvent]:
        """A snapshot of recorded events, optionally filtered by kind prefix."""
        if kind is None:
            return list(self._events)
        return [e for e in self._events if e.kind == kind or e.kind.startswith(kind + ".")]

    def tally(self) -> dict[str, int]:
        """Event count per kind (sorted) — what the property tests check
        metrics counters against."""
        counts: dict[str, int] = {}
        for event in self._events:
            counts[event.kind] = counts.get(event.kind, 0) + 1
        return dict(sorted(counts.items()))

    def __len__(self) -> int:
        return len(self._events)

    def clear(self) -> None:
        """Forget every recorded event (sequence numbering restarts too)."""
        self._events.clear()
        self._seq = 0
        self.dropped_events = 0

    # ------------------------------------------------------------------
    # export
    # ------------------------------------------------------------------
    def export_jsonl(self, target: str | IO[str]) -> int:
        """Write the trace as JSON lines; returns the number of events.

        The first line is a header record (``kind="trace.header"``) carrying
        the schema version and event count, so a truncated file is
        detectable and a reader knows what it is parsing.
        """
        events = list(self._events)
        header = json.dumps(
            {
                "kind": "trace.header",
                "schema": TRACE_SCHEMA_VERSION,
                "events": len(events),
                "dropped": self.dropped_events,
            },
            sort_keys=True,
            separators=(",", ":"),
        )
        lines = [header] + [event.to_json() for event in events]
        payload = "\n".join(lines) + "\n"
        if isinstance(target, str):
            with open(target, "w", encoding="utf-8") as handle:
                handle.write(payload)
        else:
            target.write(payload)
        return len(events)

    def absorb(self, records: Iterable[dict], dropped: int = 0) -> int:
        """Re-emit exported event *records* into this tracer, renumbered.

        The shard-merge path: records parsed from a shard file are appended
        in their original order but with this tracer's own sequence numbers,
        exactly as if the events had been emitted here in the first place.
        *dropped* carries the shard's own ring-buffer losses forward.
        """
        absorbed = 0
        for record in records:
            fields = dict(record)
            fields.pop("seq", None)
            time = fields.pop("time", -1.0)
            kind = fields.pop("kind")
            self.emit(kind, time, **fields)
            absorbed += 1
        self.dropped_events += dropped
        return absorbed


def load_jsonl(path: str) -> list[dict]:
    """Read an exported trace back as a list of event dicts (header dropped)."""
    records = []
    with open(path, encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            if record.get("kind") == "trace.header":
                continue
            records.append(record)
    return records


def structural_view(events: Iterable[TraceEvent | dict]) -> list[dict]:
    """Project events onto their stable structural skeleton.

    Golden-trace tests compare this projection — event kinds, rule ids,
    verdicts, drop reasons — not timestamps, ports or byte counts, so a
    golden artifact survives performance work and field additions.
    """
    view = []
    for event in events:
        record = event if isinstance(event, dict) else event.as_dict()
        projected = {
            key: record[key]
            for key in STRUCTURAL_FIELDS
            if key in record and record[key] is not None
        }
        view.append(projected)
    return view


# ----------------------------------------------------------------------
# the module-level recorder (None = tracing disabled, the default).  During
# a traced parallel map the worker pool temporarily swaps in a
# ShardDispatcher, which quacks like a FlowTracer for emission purposes.
# ----------------------------------------------------------------------
TRACER: FlowTracer | ShardDispatcher | None = None


def enable_tracing(capacity: int = DEFAULT_CAPACITY) -> FlowTracer:
    """Install a fresh process-wide tracer and return it."""
    global TRACER
    TRACER = FlowTracer(capacity=capacity)
    return TRACER


def disable_tracing() -> None:
    """Remove the process-wide tracer (instrumented sites go back to no-ops)."""
    global TRACER
    TRACER = None


@contextmanager
def tracing(capacity: int = DEFAULT_CAPACITY) -> Iterator[FlowTracer]:
    """Scoped tracing: enable on entry, restore the previous state on exit."""
    global TRACER
    previous = TRACER
    tracer = FlowTracer(capacity=capacity)
    TRACER = tracer
    try:
        yield tracer
    finally:
        TRACER = previous


# ----------------------------------------------------------------------
# sharded tracing (parallel traced runs)
# ----------------------------------------------------------------------
class ShardDispatcher:
    """Routes emissions to a per-worker shard tracer during a parallel map.

    Installed as the module-level :data:`TRACER` by the worker pool while a
    traced map is in flight.  A worker (thread, or forked process that
    inherited the dispatcher) calls :func:`begin_shard`, which parks a fresh
    :class:`FlowTracer` in this dispatcher's thread-local slot; instrumented
    sites keep calling ``TRACER.emit(...)`` unchanged and land in the active
    shard.  Emissions outside any shard (the driver thread itself) fall
    through to the parent tracer.
    """

    def __init__(self, parent: FlowTracer) -> None:
        self.parent = parent
        self._local = threading.local()

    def _active(self) -> FlowTracer:
        # NB: explicit None check — an empty FlowTracer is falsy (__len__ == 0),
        # so ``or`` would silently bypass a freshly-begun shard.
        shard = getattr(self._local, "tracer", None)
        return self.parent if shard is None else shard

    def set_shard(self, shard: FlowTracer | None) -> None:
        self._local.tracer = shard

    def emit(self, kind: str, time: float = -1.0, **fields: object) -> None:
        self._active().emit(kind, time, **fields)

    def span(self, name: str, time: float = -1.0, **fields: object) -> Iterator[None]:
        return self._active().span(name, time, **fields)


def begin_shard(capacity: int = DEFAULT_CAPACITY) -> FlowTracer:
    """Route this worker's emissions into a fresh shard tracer.

    In a worker *process* the module global is simply replaced (each process
    has its own); in a worker *thread* the installed :class:`ShardDispatcher`
    routes per-thread so concurrent tasks cannot interleave their events.
    """
    global TRACER
    shard = FlowTracer(capacity=capacity)
    if isinstance(TRACER, ShardDispatcher):
        TRACER.set_shard(shard)
    else:
        TRACER = shard
    return shard


def end_shard() -> None:
    """Detach the worker's shard tracer installed by :func:`begin_shard`."""
    global TRACER
    if isinstance(TRACER, ShardDispatcher):
        TRACER.set_shard(None)
    else:
        TRACER = None


@contextmanager
def shard_scope(parent: FlowTracer) -> Iterator[ShardDispatcher]:
    """Install a :class:`ShardDispatcher` over *parent* for a traced map."""
    global TRACER
    previous = TRACER
    dispatcher = ShardDispatcher(parent)
    TRACER = dispatcher
    try:
        yield dispatcher
    finally:
        TRACER = previous


def shard_filename(index: int) -> str:
    """Canonical shard file name for task *index* (fixed width, sortable)."""
    return f"shard-{index:08d}.jsonl"


def merge_shard_dir(tracer: FlowTracer, shard_dir: str, count: int) -> int:
    """Merge per-task shard files into *tracer* in (task index, seq) order.

    Shards were written by :func:`FlowTracer.export_jsonl`, so each one is
    already internally ordered by seq; visiting them in task-index order and
    renumbering through :meth:`FlowTracer.absorb` reproduces exactly the
    event sequence a serial run would have recorded.  Missing shards (a task
    that emitted nothing, or a skipped/failed task) are silently empty.
    Returns the number of merged events.
    """
    merged = 0
    for index in range(count):
        path = os.path.join(shard_dir, shard_filename(index))
        if not os.path.exists(path):
            continue
        dropped = 0
        with open(path, encoding="utf-8") as handle:
            records = []
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                record = json.loads(line)
                if record.get("kind") == "trace.header":
                    dropped = record.get("dropped", 0)
                    continue
                records.append(record)
        merged += tracer.absorb(records, dropped=dropped)
    return merged


def packet_fields(packet) -> dict:
    """The deterministic identity of a packet, for event payloads.

    Uses only explicitly-set header fields (addresses, ports, IP ident,
    protocol, TTL, payload length) — never ``id()`` or ``hash()`` — so the
    same run always describes the same packet the same way.
    """
    transport = packet.transport
    fields = {
        "src": packet.src,
        "dst": packet.dst,
        "proto": packet.effective_protocol,
        "ident": packet.identification,
        "ttl": packet.ttl,
    }
    sport = getattr(transport, "sport", None)
    if sport is not None:
        fields["sport"] = sport
        fields["dport"] = getattr(transport, "dport", None)
    payload = packet.app_payload
    fields["plen"] = len(payload) if payload else 0
    if packet.is_fragment:
        fields["frag"] = True
    return fields
