"""The self-contained HTML experiment dashboard (``liberate obs html``).

One run — one file.  The dashboard is a single HTML document with **zero
external dependencies**: styling is an inline ``<style>`` block, charts are
inline SVG (histogram sparklines, per-stage profile waterfalls, the
benchmark-history trend), and cell drill-downs use native
``<details>``/``<summary>`` — no JavaScript, no CDN, no network.  It renders
identically from ``file://`` on an air-gapped machine, which is the whole
point: an experiment artifact you can attach to CI or mail around.

Both the dashboard and the ``liberate obs report`` text summary are views
over one **report model** (:func:`build_model`): a plain JSON-ready dict
combining whichever observability artifacts a run produced — the trace
summary (:meth:`repro.obs.analyze.TraceIndex.summary`), the metrics
snapshot, the profiler snapshot, the telemetry-event tally and the
benchmark history with its watchdog flags.  The model is embedded verbatim
in the page (``<script type="application/json">``) so downstream tooling
can recover exactly what was rendered; :func:`load_model` reads it back and
:func:`missing_metric_keys` powers the CI schema-drift check (fail the
build when the dashboard references a headline metric the snapshot no
longer carries).
"""

from __future__ import annotations

import html as _html
import json
from typing import IO, Sequence

#: Bumped whenever a model section is renamed or removed.
DASHBOARD_SCHEMA_VERSION = 1

#: Metric keys the dashboard's headline tiles reference.  Every key here
#: must exist in the snapshot of a traced + metered ``table3`` run; the CI
#: check (``liberate obs html --check``) fails when one goes missing, which
#: is how a silent metric rename gets caught before it blanks a tile.
HEADLINE_METRICS = (
    "table3.cells",
    "replay.runs",
    "mbx.rule_matches",
    "mbx.scan_bytes",
    "mbx.flows_created",
    # Automaton compilations are memoized per process, so the *lookup*
    # counter is the headline (present in every metered run); the
    # mbx.automaton.builds/states/patterns series ride along when a run
    # actually compiled.
    "mbx.automaton.lookups",
    "env.created",
)

#: Keys a model's ``coverage`` section must carry for its dashboard section
#: (and ``liberate obs coverage``) to render.  Checked by ``obs html
#: --check`` alongside the headline metrics whenever a dashboard embeds a
#: coverage snapshot.
COVERAGE_MODEL_KEYS = ("schema", "scopes", "automata", "matrix", "total_rule_hits")

_MODEL_ELEMENT_ID = "dashboard-model"


# ----------------------------------------------------------------------
# the shared report model
# ----------------------------------------------------------------------
def build_model(
    trace_summary: dict | None = None,
    metrics: dict | None = None,
    profile: dict | None = None,
    events: dict[str, int] | None = None,
    history: dict[str, list[dict]] | None = None,
    flags: Sequence[dict] | None = None,
    ops: dict | None = None,
    coverage: dict | None = None,
    title: str = "lib*erate experiment dashboard",
) -> dict:
    """Combine a run's observability artifacts into one JSON-ready model.

    Every argument is optional — the model (and the dashboard rendered from
    it) simply omits sections for artifacts the run did not produce.

    Args:
        trace_summary: :meth:`repro.obs.analyze.TraceIndex.summary` output.
        metrics: :meth:`repro.obs.metrics.MetricsRegistry.snapshot` output.
        profile: :meth:`repro.obs.profiling.Profiler.snapshot` output.
        events: :meth:`repro.obs.live.TelemetryBus.tally` output.
        history: :func:`repro.obs.history.load_history` output.
        flags: watchdog regression flags (``RegressionFlag.as_dict()``).
        ops: :meth:`repro.obs.ops.OpsRegistry.snapshot` output — wall-clock
            operational data, rendered in its own section and deliberately
            kept out of the deterministic ``metrics`` snapshot.
        coverage: :meth:`repro.obs.coverage.CoverageRecorder.snapshot`
            output — rule/automaton coverage plus the env × technique
            matrix.
        title: the page heading.
    """
    return {
        "schema": DASHBOARD_SCHEMA_VERSION,
        "title": title,
        "headline": list(HEADLINE_METRICS),
        "trace": trace_summary,
        "metrics": metrics,
        "profile": profile,
        "events": events,
        "history": history,
        "flags": list(flags) if flags is not None else None,
        "ops": ops,
        "coverage": coverage,
    }


def missing_metric_keys(model: dict) -> list[str]:
    """Headline metric keys the model's snapshot does not carry.

    The CI schema-drift check: a dashboard built from a metered run must
    have a value for every metric its headline tiles reference.  A model
    without a metrics section at all is fully missing (the check only runs
    against metered dashboards).
    """
    metrics = model.get("metrics")
    referenced = model.get("headline") or list(HEADLINE_METRICS)
    missing = (
        list(referenced)
        if not metrics
        else [key for key in referenced if key not in metrics]
    )
    # A dashboard that embeds a coverage snapshot must carry every section
    # the coverage renderer (and `obs coverage`) reads from it.
    coverage = model.get("coverage")
    if coverage:
        missing.extend(
            f"coverage.{key}" for key in COVERAGE_MODEL_KEYS if key not in coverage
        )
    return missing


def load_model(path: str) -> dict:
    """Recover the embedded report model from a rendered dashboard file."""
    with open(path, encoding="utf-8") as handle:
        page = handle.read()
    marker = f'<script type="application/json" id="{_MODEL_ELEMENT_ID}">'
    start = page.find(marker)
    if start < 0:
        raise ValueError(f"{path}: no embedded dashboard model found")
    start += len(marker)
    end = page.find("</script>", start)
    if end < 0:
        raise ValueError(f"{path}: embedded dashboard model is truncated")
    return json.loads(page[start:end])


# ----------------------------------------------------------------------
# text rendering (the `liberate obs report` view of the same model)
# ----------------------------------------------------------------------
def render_text(model: dict) -> str:
    """The model as a terminal summary (shared with ``obs report``)."""
    lines: list[str] = []
    trace = model.get("trace")
    if trace:
        lines.append(
            f"trace: {trace.get('events', 0)} events over "
            f"{trace.get('flows', 0)} flow(s)"
        )
        for section in ("kinds", "rules", "drops", "verdicts", "arq"):
            payload = trace.get(section)
            if not payload:
                continue
            lines.append(f"{section}:")
            for key, value in payload.items():
                if isinstance(value, dict):
                    value = value.get("matches", value)
                lines.append(f"  {key:42s} {value}")
        cells = trace.get("cells") or []
        if cells:
            lines.append(f"cells: {len(cells)} experiment result(s) recorded")
    events = model.get("events")
    if events:
        lines.append("telemetry events:")
        for kind, count in events.items():
            lines.append(f"  {kind:42s} {count}")
    metrics = model.get("metrics")
    if metrics:
        lines.append(f"metrics: {len(metrics)} series")
    profile = model.get("profile")
    if profile:
        stages = {k: v for k, v in profile.items() if isinstance(v, dict)}
        lines.append(f"profile: {len(stages)} stage(s)")
        peak = profile.get("peak_rss_kb")
        if peak:
            lines.append(f"peak RSS: {peak} KiB")
    flags = model.get("flags")
    if flags:
        lines.append(f"watchdog: {len(flags)} regression flag(s)")
    coverage = model.get("coverage")
    if coverage:
        scopes = coverage.get("scopes") or {}
        dead = sum(len(scope.get("dead") or []) for scope in scopes.values())
        lines.append(
            f"coverage: {len(scopes)} rule scope(s), {dead} dead rule(s), "
            f"{coverage.get('total_rule_hits', 0)} rule hit(s)"
        )
    ops = model.get("ops")
    if ops:
        latency = ops.get("latency") or {}
        lines.append(
            f"ops: {len(latency)} latency recorder(s), "
            f"uptime {ops.get('uptime_seconds', 0)}s"
        )
        for name, summary in latency.items():
            lines.append(
                f"  {name:42s} n={summary.get('count', 0)} "
                f"p50={summary.get('p50_ms', 0)}ms p99={summary.get('p99_ms', 0)}ms"
            )
    return "\n".join(lines) if lines else "(empty report model)"


# ----------------------------------------------------------------------
# SVG helpers (inline, no external assets)
# ----------------------------------------------------------------------
def _esc(value: object) -> str:
    return _html.escape(str(value), quote=True)


def _spark_bars(values: Sequence[float], width: int = 120, height: int = 28) -> str:
    """An inline-SVG bar sparkline (histogram buckets)."""
    if not values:
        return ""
    peak = max(values) or 1
    step = width / len(values)
    bars = []
    for index, value in enumerate(values):
        bar_height = round(value / peak * (height - 2), 2)
        bars.append(
            f'<rect x="{round(index * step + 0.5, 2)}" '
            f'y="{round(height - bar_height, 2)}" '
            f'width="{round(step - 1, 2)}" height="{bar_height}" class="bar"/>'
        )
    return (
        f'<svg class="spark" width="{width}" height="{height}" '
        f'viewBox="0 0 {width} {height}" role="img">' + "".join(bars) + "</svg>"
    )


def _spark_line(values: Sequence[float], width: int = 220, height: int = 36) -> str:
    """An inline-SVG polyline sparkline (benchmark-history trend)."""
    if not values:
        return ""
    if len(values) == 1:
        values = list(values) * 2
    low, high = min(values), max(values)
    span = (high - low) or 1.0
    step = width / (len(values) - 1)
    points = " ".join(
        f"{round(i * step, 2)},{round(height - 3 - (v - low) / span * (height - 6), 2)}"
        for i, v in enumerate(values)
    )
    return (
        f'<svg class="spark" width="{width}" height="{height}" '
        f'viewBox="0 0 {width} {height}" role="img">'
        f'<polyline points="{points}" class="trend"/></svg>'
    )


def _waterfall(profile: dict) -> str:
    """Per-stage horizontal bars, scaled to the slowest stage's wall time."""
    # Non-dict entries (e.g. the peak_rss_kb summary fact) are not stages.
    stages = sorted((k, v) for k, v in profile.items() if isinstance(v, dict))
    peak = max((s.get("wall_seconds", 0.0) for _, s in stages), default=0.0) or 1.0
    rows = []
    for name, stage in stages:
        wall = stage.get("wall_seconds", 0.0)
        cpu = stage.get("cpu_seconds", 0.0)
        calls = stage.get("calls", 0)
        wall_px = max(round(wall / peak * 260, 1), 1)
        cpu_px = max(round(min(cpu, wall) / peak * 260, 1), 0)
        rows.append(
            "<tr>"
            f"<td><code>{_esc(name)}</code></td>"
            f'<td><svg width="260" height="14" viewBox="0 0 260 14">'
            f'<rect x="0" y="2" width="{wall_px}" height="10" class="wall"/>'
            f'<rect x="0" y="2" width="{cpu_px}" height="10" class="cpu"/></svg></td>'
            f"<td class=\"num\">{wall:.4f}s</td>"
            f"<td class=\"num\">{cpu:.4f}s</td>"
            f"<td class=\"num\">{calls}</td>"
            "</tr>"
        )
    return (
        '<table><thead><tr><th>stage</th><th>waterfall (wall / cpu)</th>'
        "<th>wall</th><th>cpu</th><th>calls</th></tr></thead><tbody>"
        + "".join(rows)
        + "</tbody></table>"
    )


# ----------------------------------------------------------------------
# section renderers
# ----------------------------------------------------------------------
def _section(title: str, body: str) -> str:
    return f"<section><h2>{_esc(title)}</h2>{body}</section>"


def _headline_section(model: dict) -> str:
    metrics = model.get("metrics")
    if not metrics:
        return ""
    tiles = []
    for key in model.get("headline") or HEADLINE_METRICS:
        value = metrics.get(key)
        if value is None:
            continue
        if isinstance(value, dict):  # a histogram headline: show its count
            value = value.get("count", "?")
        if isinstance(value, float) and value.is_integer():
            value = int(value)
        tiles.append(
            f'<div class="tile"><div class="tile-value">{_esc(value)}</div>'
            f'<div class="tile-key">{_esc(key)}</div></div>'
        )
    if not tiles:
        return ""
    return _section("Headline metrics", f'<div class="tiles">{"".join(tiles)}</div>')


def _cells_section(model: dict) -> str:
    trace = model.get("trace") or {}
    cells = [c for c in trace.get("cells") or [] if c.get("kind") == "table3.cell"]
    samples = [c for c in trace.get("cells") or [] if c.get("kind") == "figure4.sample"]
    parts = []
    if cells:
        envs: list[str] = []
        techniques: list[str] = []
        by_key: dict[tuple[str, str], dict] = {}
        for cell in cells:
            env, technique = str(cell.get("env")), str(cell.get("technique"))
            if env not in envs:
                envs.append(env)
            if technique not in techniques:
                techniques.append(technique)
            by_key[(env, technique)] = cell
        head = "<tr><th>technique</th>" + "".join(
            f"<th>{_esc(env)}</th>" for env in envs
        ) + "</tr>"
        rows = []
        for technique in techniques:
            tds = [f"<td><code>{_esc(technique)}</code></td>"]
            for env in envs:
                cell = by_key.get((env, technique))
                if cell is None:
                    tds.append("<td>·</td>")
                    continue
                cc, rs = str(cell.get("cc", "?")), str(cell.get("rs", "?"))
                klass = "ok" if cc.startswith("Y") else "na" if cc == "-" else "bad"
                detail = "".join(
                    f"<div><b>{_esc(k)}</b>: {_esc(v)}</div>"
                    for k, v in sorted(cell.items())
                    if k not in ("kind",)
                )
                tds.append(
                    f'<td class="{klass}"><details><summary>CC={_esc(cc)} '
                    f"RS={_esc(rs)}</summary>{detail}</details></td>"
                )
            rows.append("<tr>" + "".join(tds) + "</tr>")
        parts.append(
            f"<table><thead>{head}</thead><tbody>{''.join(rows)}</tbody></table>"
        )
    if samples:
        evaded = sum(1 for s in samples if s.get("min_delay") is not None)
        parts.append(
            f"<p>{len(samples)} figure-4 sample(s); {evaded} found a working "
            f"delay, {len(samples) - evaded} never evaded.</p>"
        )
    if not parts:
        return ""
    return _section("Experiment cells", "".join(parts))


def _metrics_section(model: dict) -> str:
    metrics = model.get("metrics")
    if not metrics:
        return ""
    rows = []
    for key, value in sorted(metrics.items()):
        if isinstance(value, dict):  # histogram: count/sum + bucket sparkline
            buckets = value.get("buckets") or {}
            counts = list(buckets.values())
            per_bucket = [
                counts[i] - (counts[i - 1] if i else 0) for i in range(len(counts))
            ]
            rendered = (
                f"count={_esc(value.get('count'))} sum={_esc(value.get('sum'))} "
                + _spark_bars(per_bucket)
            )
        else:
            if isinstance(value, float) and value.is_integer():
                value = int(value)
            rendered = _esc(value)
        rows.append(
            f"<tr><td><code>{_esc(key)}</code></td><td>{rendered}</td></tr>"
        )
    return _section(
        "Metrics",
        "<table><thead><tr><th>series</th><th>value</th></tr></thead>"
        f"<tbody>{''.join(rows)}</tbody></table>",
    )


def _profile_section(model: dict) -> str:
    profile = model.get("profile")
    if not profile:
        return ""
    body = _waterfall(profile)
    peak = profile.get("peak_rss_kb")
    if peak:
        mib = peak / 1024
        body = (
            f'<p class="tile">peak RSS <strong>{mib:.1f} MiB</strong> '
            f"({_esc(peak)} KiB, max across processes)</p>" + body
        )
    return _section("Stage profile", body)


def _trace_section(model: dict) -> str:
    trace = model.get("trace")
    if not trace:
        return ""
    parts = [
        f"<p>{_esc(trace.get('events', 0))} events over "
        f"{_esc(trace.get('flows', 0))} flow(s).</p>"
    ]
    for section in ("kinds", "drops", "verdicts", "arq"):
        payload = trace.get(section)
        if not payload:
            continue
        rows = "".join(
            f"<tr><td><code>{_esc(k)}</code></td><td class=\"num\">{_esc(v)}</td></tr>"
            for k, v in payload.items()
        )
        parts.append(
            f"<h3>{_esc(section)}</h3><table><tbody>{rows}</tbody></table>"
        )
    rules = trace.get("rules")
    if rules:
        rows = "".join(
            f"<tr><td><code>{_esc(rule)}</code></td>"
            f"<td class=\"num\">{_esc(stats.get('matches'))}</td>"
            f"<td>{_esc(', '.join((stats.get('actions') or {}).keys()))}</td>"
            f"<td>{_esc(', '.join(stats.get('elements') or []))}</td></tr>"
            for rule, stats in rules.items()
        )
        parts.append(
            "<h3>rules</h3><table><thead><tr><th>rule</th><th>matches</th>"
            f"<th>actions</th><th>elements</th></tr></thead><tbody>{rows}</tbody></table>"
        )
    return _section("Flow trace", "".join(parts))


def _events_section(model: dict) -> str:
    events = model.get("events")
    if not events:
        return ""
    rows = "".join(
        f"<tr><td><code>{_esc(kind)}</code></td><td class=\"num\">{_esc(count)}</td></tr>"
        for kind, count in events.items()
    )
    return _section(
        "Telemetry events",
        f"<table><thead><tr><th>kind</th><th>count</th></tr></thead>"
        f"<tbody>{rows}</tbody></table>",
    )


def _ops_section(model: dict) -> str:
    """Wall-clock serving telemetry: latency percentiles + ops counters.

    Everything in this section comes from the segregated ops layer — it is
    real time, varies run to run, and is exactly what the deterministic
    metrics section must never contain.
    """
    ops = model.get("ops")
    if not ops:
        return ""
    parts = []
    uptime = ops.get("uptime_seconds")
    if uptime is not None:
        parts.append(
            '<div class="tiles"><div class="tile">'
            f'<div class="tile-value">{_esc(uptime)}s</div>'
            '<div class="tile-key">uptime</div></div></div>'
        )
    latency = ops.get("latency") or {}
    if latency:
        rows = []
        for name, summary in sorted(latency.items()):
            cells = "".join(
                f'<td class="num">{_esc(summary.get(key, ""))}</td>'
                for key in ("count", "p50_ms", "p90_ms", "p99_ms", "p999_ms", "max_ms")
            )
            rows.append(f"<tr><td><code>{_esc(name)}</code></td>{cells}</tr>")
        parts.append(
            "<table><thead><tr><th>recorder</th><th>count</th><th>p50 ms</th>"
            "<th>p90 ms</th><th>p99 ms</th><th>p99.9 ms</th><th>max ms</th>"
            f"</tr></thead><tbody>{''.join(rows)}</tbody></table>"
        )
    counters = ops.get("counters") or {}
    if counters:
        rows = "".join(
            f'<tr><td><code>{_esc(name)}</code></td><td class="num">{_esc(value)}</td></tr>'
            for name, value in sorted(counters.items())
        )
        parts.append(
            "<table><thead><tr><th>ops counter</th><th>value</th></tr></thead>"
            f"<tbody>{rows}</tbody></table>"
        )
    return _section("Live serving (wall clock)", "".join(parts))


def _coverage_section(model: dict) -> str:
    """Rule/automaton coverage: exercised vs. dead rules + the cell matrix.

    Renders the ``--coverage`` snapshot: one table per rule scope (dead
    rules highlighted — a registered rule no workload ever exercised is
    exactly what this section exists to surface), automaton state/edge
    visitation, and the env × technique coverage matrix.
    """
    coverage = model.get("coverage")
    if not coverage:
        return ""
    parts = []
    scopes = coverage.get("scopes") or {}
    for scope, stats in sorted(scopes.items()):
        dead = set(stats.get("dead") or [])
        hits = dict(stats.get("hits") or {})
        rows = "".join(
            f'<tr><td><code>{_esc(rule)}</code></td>'
            f'<td class="num">{_esc(count)}</td>'
            + (
                '<td class="bad">dead</td>'
                if rule in dead
                else '<td class="ok">exercised</td>'
            )
            + "</tr>"
            for rule, count in sorted(hits.items())
        )
        parts.append(
            f"<h3><code>{_esc(scope)}</code> — "
            f"{_esc(stats.get('exercised', 0))}/{_esc(stats.get('rules', 0))} "
            "rules exercised</h3>"
            "<table><thead><tr><th>rule</th><th>hits</th><th>status</th>"
            f"</tr></thead><tbody>{rows}</tbody></table>"
        )
    automata = coverage.get("automata") or {}
    if automata:
        rows = "".join(
            f'<tr><td><code>{_esc(digest)}</code></td>'
            f'<td class="num">{_esc(stats.get("patterns"))}</td>'
            f'<td class="num">{_esc(stats.get("states_visited"))} / '
            f'{_esc(stats.get("states"))}</td>'
            f'<td class="num">{_esc(stats.get("edges_walked"))}</td></tr>'
            for digest, stats in sorted(automata.items())
        )
        parts.append(
            "<h3>automata</h3><table><thead><tr><th>automaton</th>"
            "<th>patterns</th><th>states visited</th><th>edges walked</th>"
            f"</tr></thead><tbody>{rows}</tbody></table>"
        )
    matrix = coverage.get("matrix") or {}
    if matrix:
        envs: list[str] = []
        techniques: list[str] = []
        by_key: dict[tuple[str, str], dict] = {}
        for cell in matrix.values():
            env, technique = str(cell.get("env")), str(cell.get("technique"))
            if env not in envs:
                envs.append(env)
            if technique not in techniques:
                techniques.append(technique)
            by_key[(env, technique)] = cell
        head = "<tr><th>technique</th>" + "".join(
            f"<th>{_esc(env)}</th>" for env in sorted(envs)
        ) + "</tr>"
        rows = []
        for technique in sorted(techniques):
            tds = [f"<td><code>{_esc(technique)}</code></td>"]
            for env in sorted(envs):
                cell = by_key.get((env, technique))
                if cell is None:
                    tds.append("<td>·</td>")
                    continue
                rule_hits = cell.get("rule_hits", 0)
                rules = len(cell.get("rules") or [])
                klass = "ok" if rule_hits else "na"
                tds.append(
                    f'<td class="{klass}">{_esc(rule_hits)} hit(s), '
                    f"{rules} rule(s)</td>"
                )
            rows.append("<tr>" + "".join(tds) + "</tr>")
        parts.append(
            "<h3>coverage matrix (env × technique)</h3>"
            f"<table><thead>{head}</thead><tbody>{''.join(rows)}</tbody></table>"
        )
    total = coverage.get("total_rule_hits")
    if total is not None:
        parts.append(f"<p>{_esc(total)} rule hit(s) recorded in total.</p>")
    return _section("Rule coverage", "".join(parts))


def _history_section(model: dict) -> str:
    history = model.get("history")
    if not history:
        return ""
    flagged = {
        (flag.get("bench"), flag.get("key")) for flag in model.get("flags") or []
    }
    parts = []
    for bench, entries in sorted(history.items()):
        seconds = [
            entry.get("seconds")
            for entry in entries
            if isinstance(entry.get("seconds"), (int, float))
        ]
        marks = " ".join(
            f'<span class="flag">⚠ {_esc(key)}</span>'
            for (fbench, key) in sorted(flagged, key=str)
            if fbench == bench
        )
        parts.append(
            f"<h3><code>{_esc(bench)}</code> {marks}</h3>"
            + (_spark_line(seconds) if seconds else "<p>no timing history</p>")
            + (
                f"<p>{len(entries)} run(s); last "
                f"{seconds[-1]:.4f}s</p>"
                if seconds
                else ""
            )
        )
    flags = model.get("flags")
    if flags:
        rows = "".join(
            f"<tr><td><code>{_esc(f.get('bench'))}</code></td>"
            f"<td><code>{_esc(f.get('key'))}</code></td>"
            f"<td>{_esc(f.get('message'))}</td></tr>"
            for f in flags
        )
        parts.append(
            '<h3 class="flag">watchdog flags</h3>'
            "<table><thead><tr><th>bench</th><th>key</th><th>message</th></tr>"
            f"</thead><tbody>{rows}</tbody></table>"
        )
    return _section("Benchmark history", "".join(parts))


_STYLE = """
body { font: 14px/1.5 system-ui, sans-serif; margin: 2rem auto; max-width: 72rem;
       padding: 0 1rem; color: #1b1f24; background: #fff; }
h1 { font-size: 1.4rem; border-bottom: 2px solid #1b1f24; padding-bottom: .4rem; }
h2 { font-size: 1.1rem; margin-top: 2rem; }
h3 { font-size: .95rem; margin-bottom: .3rem; }
table { border-collapse: collapse; margin: .5rem 0; }
th, td { border: 1px solid #d0d7de; padding: .25rem .6rem; text-align: left; }
th { background: #f6f8fa; }
td.num { text-align: right; font-variant-numeric: tabular-nums; }
td.ok { background: #dafbe1; }
td.bad { background: #ffebe9; }
td.na { color: #8b949e; }
details > summary { cursor: pointer; }
.tiles { display: flex; flex-wrap: wrap; gap: .6rem; }
.tile { border: 1px solid #d0d7de; border-radius: 6px; padding: .5rem .9rem;
        background: #f6f8fa; }
.tile-value { font-size: 1.3rem; font-weight: 600; }
.tile-key { font-size: .75rem; color: #57606a; }
.spark .bar { fill: #0969da; }
.spark .trend { fill: none; stroke: #0969da; stroke-width: 1.5; }
svg .wall { fill: #d0d7de; }
svg .cpu { fill: #0969da; }
.flag { color: #9a6700; }
footer { margin-top: 2rem; font-size: .75rem; color: #57606a; }
"""


def render_dashboard(model: dict) -> str:
    """The model as one self-contained HTML page."""
    sections = "".join(
        renderer(model)
        for renderer in (
            _headline_section,
            _cells_section,
            _metrics_section,
            _profile_section,
            _trace_section,
            _events_section,
            _ops_section,
            _coverage_section,
            _history_section,
        )
    )
    if not sections:
        sections = "<p>(no observability artifacts in this run)</p>"
    embedded = json.dumps(model, sort_keys=True, separators=(",", ":"))
    # "</" may not appear inside a <script> block; JSON-escape it.
    embedded = embedded.replace("</", "<\\/")
    return (
        "<!DOCTYPE html>\n"
        '<html lang="en"><head><meta charset="utf-8">\n'
        f"<title>{_esc(model.get('title', 'dashboard'))}</title>\n"
        f"<style>{_STYLE}</style></head>\n"
        f"<body><h1>{_esc(model.get('title', 'dashboard'))}</h1>\n"
        f"{sections}\n"
        f"<footer>dashboard schema v{_esc(model.get('schema'))} — "
        "rendered by <code>repro.obs.report_html</code>, no external "
        "assets.</footer>\n"
        f'<script type="application/json" id="{_MODEL_ELEMENT_ID}">{embedded}</script>\n'
        "</body></html>\n"
    )


def write_dashboard(model: dict, target: str | IO[str]) -> str:
    """Render *model* and write it to *target* (path or handle)."""
    page = render_dashboard(model)
    if isinstance(target, str):
        with open(target, "w", encoding="utf-8") as handle:
            handle.write(page)
    else:
        target.write(page)
    return page
