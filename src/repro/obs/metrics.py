"""The metrics registry: always-cheap counters, gauges and histograms.

Where the flow tracer answers "what happened to this packet", the metrics
registry answers "how much of everything happened": packets forwarded and
dropped per element, bytes fed through the rule scanner, wire-cache hit
rates, worker-pool retries and circuit-breaker trips.  The ROADMAP's
production north-star needs these numbers always available to keep the PR 1
fast paths honest.

Like tracing, metrics are **disabled by default**: the module-level
:data:`METRICS` is ``None`` and instrumented sites guard with a single
``is not None`` check.  Enabled, every operation is one dict update — cheap
enough to leave on for a whole experiment run.

The registry is deliberately flat (dotted metric names, scalar values) so a
snapshot is a plain sorted dict: embeddable in reports, printable from the
CLI (``--metrics``), and trivially diffable between runs.
"""

from __future__ import annotations

import bisect
import math
from contextlib import contextmanager
from typing import Iterator

#: Default histogram bucket upper bounds (values land in the first bucket
#: whose bound is >= the observation; the last bucket is +inf).
DEFAULT_BUCKETS = (1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000)

#: Wall-clock metric namespace.  Anything under ``ops.`` is operational
#: telemetry (latency percentiles, uptime, live serving counters) and is
#: **excluded from deterministic snapshots** — cross-backend byte-identity
#: of :meth:`MetricsRegistry.snapshot` covers simulated behaviour only, and
#: wall-clock numbers would break it.  The ops endpoint and ``/statusz``
#: read the segregated series through ``include_ops=True``.
OPS_PREFIX = "ops."


def log_bucket_bounds(
    low: float, high: float, per_decade: int = 5
) -> tuple[float, ...]:
    """Log-spaced bucket upper bounds from *low* to at least *high*.

    The HDR-style layout shared by :meth:`Histogram.log_spaced` and
    :class:`repro.obs.ops.LatencyRecorder`: *per_decade* geometrically
    spaced bounds per factor of ten, so relative quantile error is bounded
    (~``10**(1/per_decade)``) across the whole range with a few dozen
    buckets.  Bounds are rounded to three significant digits so exported
    layouts are stable across platforms.
    """
    if low <= 0 or high <= low:
        raise ValueError(f"need 0 < low < high, got low={low} high={high}")
    if per_decade < 1:
        raise ValueError(f"per_decade must be >= 1, got {per_decade}")
    growth = 10.0 ** (1.0 / per_decade)
    bounds: list[float] = []
    value = low
    while True:
        rounded = float(f"{value:.3g}")
        if not bounds or rounded > bounds[-1]:
            bounds.append(rounded)
        if rounded >= high:
            break
        value *= growth
    return tuple(bounds)


#: Canonical latency bucket layout (seconds): 1µs .. 60s, 5 per decade.
#: Shared by the ops-layer latency recorders and any time-scaled Histogram
#: so dumps merge without shape mismatches.
LATENCY_BUCKETS = log_bucket_bounds(1e-6, 60.0, per_decade=5)


class Histogram:
    """A fixed-bucket histogram (counts per upper bound, plus sum/count)."""

    __slots__ = ("bounds", "counts", "total", "count")

    def __init__(self, bounds: tuple[float, ...] = DEFAULT_BUCKETS) -> None:
        self.bounds = tuple(bounds)
        self.counts = [0] * (len(self.bounds) + 1)  # last slot = +inf
        self.total = 0.0
        self.count = 0

    @classmethod
    def log_spaced(
        cls, low: float = 1e-6, high: float = 60.0, per_decade: int = 5
    ) -> "Histogram":
        """A histogram on :func:`log_bucket_bounds` — the explicit-boundary
        constructor for time-scaled observations (seconds), sharing its
        layout with :class:`repro.obs.ops.LatencyRecorder` so worker dumps
        merge element-wise."""
        return cls(log_bucket_bounds(low, high, per_decade))

    def observe(self, value: float) -> None:
        """Record one observation."""
        self.counts[bisect.bisect_left(self.bounds, value)] += 1
        self.total += value
        self.count += 1

    def percentile(self, p: float) -> float:
        """The *p*-th percentile (0–100), resolved to a bucket upper bound.

        Fixed-bucket histograms can only answer "which bucket holds the
        p-th ranked observation", so the returned value is that bucket's
        upper bound — an upper estimate, exact when observations sit on
        bucket boundaries.  An empty histogram reports 0.0; observations
        beyond the last bound report ``inf`` (the overflow bucket).
        """
        if not 0 <= p <= 100:
            raise ValueError(f"percentile must be in [0, 100], got {p}")
        if self.count == 0:
            return 0.0
        rank = max(1, math.ceil(p * self.count / 100))
        running = 0
        for bound, n in zip(self.bounds, self.counts):
            running += n
            if running >= rank:
                return float(bound)
        return float("inf")

    def as_dict(self) -> dict:
        """JSON-ready summary: count, sum, and per-bucket cumulative counts."""
        cumulative, running = {}, 0
        for bound, n in zip(self.bounds, self.counts):
            running += n
            cumulative[str(bound)] = running
        cumulative["inf"] = running + self.counts[-1]
        return {"count": self.count, "sum": round(self.total, 6), "buckets": cumulative}

    def merge_counts(self, counts: list[int], total: float, count: int) -> None:
        """Fold another histogram's raw per-bucket counts into this one.

        The worker-snapshot merge path: both histograms must share bounds
        (they do — instrumented sites pass the same bucket layout on every
        process), so merging is element-wise addition and the merged
        summary equals what a single-process run would have recorded.
        """
        if len(counts) != len(self.counts):
            raise ValueError(
                f"histogram shape mismatch: {len(counts)} buckets vs {len(self.counts)}"
            )
        for index, n in enumerate(counts):
            self.counts[index] += n
        self.total += total
        self.count += count


class MetricsRegistry:
    """A flat namespace of counters, gauges and histograms."""

    def __init__(self) -> None:
        self._counters: dict[str, float] = {}
        self._gauges: dict[str, float] = {}
        self._histograms: dict[str, Histogram] = {}

    # ------------------------------------------------------------------
    # recording (called only behind an ``is not None`` guard)
    # ------------------------------------------------------------------
    def inc(self, name: str, amount: float = 1) -> None:
        """Increment counter *name* by *amount*."""
        self._counters[name] = self._counters.get(name, 0) + amount

    def set_gauge(self, name: str, value: float) -> None:
        """Set gauge *name* to *value* (last write wins)."""
        self._gauges[name] = value

    def observe(self, name: str, value: float, bounds: tuple[float, ...] = DEFAULT_BUCKETS) -> None:
        """Record *value* into histogram *name* (created on first use)."""
        histogram = self._histograms.get(name)
        if histogram is None:
            histogram = self._histograms[name] = Histogram(bounds)
        histogram.observe(value)

    # ------------------------------------------------------------------
    # readout
    # ------------------------------------------------------------------
    def counter(self, name: str) -> float:
        """The current value of counter *name* (0 when never incremented)."""
        return self._counters.get(name, 0)

    def counters(self) -> dict[str, float]:
        """All counters by name (a copy; Prometheus exposition reads this)."""
        return dict(self._counters)

    def gauges(self) -> dict[str, float]:
        """All gauges by name (a copy; Prometheus exposition reads this)."""
        return dict(self._gauges)

    def histograms(self) -> dict[str, Histogram]:
        """The live histogram objects by name (Prometheus exposition reads
        raw bucket counts from them; do not mutate)."""
        return dict(self._histograms)

    def snapshot(self, include_ops: bool = False) -> dict:
        """Everything, as one sorted JSON-ready dict.

        Counter/gauge keys map to scalars; histogram keys map to
        ``{count, sum, buckets}`` dicts.  Sorted so two snapshots of the
        same run serialize identically.

        Keys under :data:`OPS_PREFIX` carry wall-clock operational data and
        are excluded by default: the deterministic snapshot (golden
        artifacts, cross-backend identity checks) must never depend on real
        time.  ``include_ops=True`` is the operational read (``/statusz``).
        """
        merged: dict[str, object] = {}
        merged.update(self._counters)
        merged.update(self._gauges)
        merged.update({name: h.as_dict() for name, h in self._histograms.items()})
        if not include_ops:
            merged = {
                name: value
                for name, value in merged.items()
                if not name.startswith(OPS_PREFIX)
            }
        return dict(sorted(merged.items()))

    def render(self) -> str:
        """A human-readable snapshot table (the ``--metrics`` output)."""
        lines = []
        for name, value in self.snapshot().items():
            if isinstance(value, dict):
                lines.append(
                    f"{name:44s} count={value['count']} sum={value['sum']}"
                )
            else:
                display = int(value) if float(value).is_integer() else round(value, 4)
                lines.append(f"{name:44s} {display}")
        return "\n".join(lines) if lines else "(no metrics recorded)"

    def reset(self) -> None:
        """Zero every metric."""
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()

    # ------------------------------------------------------------------
    # cross-process merging (the worker-pool snapshot path)
    # ------------------------------------------------------------------
    def dump(self) -> dict:
        """A lossless, picklable export of the registry's raw state.

        Unlike :meth:`snapshot` (which flattens histograms into cumulative
        buckets for display), a dump keeps raw per-bucket counts so another
        registry can :meth:`merge_dump` it without information loss.  This
        is what process-pool workers ship back with each task result.
        """
        return {
            "counters": dict(self._counters),
            "gauges": dict(self._gauges),
            "histograms": {
                name: {
                    "bounds": list(h.bounds),
                    "counts": list(h.counts),
                    "total": h.total,
                    "count": h.count,
                }
                for name, h in self._histograms.items()
            },
        }

    def merge_dump(self, dump: dict) -> None:
        """Fold one worker's :meth:`dump` into this registry.

        Counters and histograms add; gauges take the dump's value (last
        write wins, exactly as if the worker had run inline).  The pool
        merges dumps in (task index, key) order — task buffers visited in
        task order, keys sorted within each — so the merged registry is
        deterministic and, for a clean run, identical to a serial run's.
        """
        for name, value in sorted(dump.get("counters", {}).items()):
            self._counters[name] = self._counters.get(name, 0) + value
        for name, value in sorted(dump.get("gauges", {}).items()):
            self._gauges[name] = value
        for name, payload in sorted(dump.get("histograms", {}).items()):
            histogram = self._histograms.get(name)
            if histogram is None:
                histogram = self._histograms[name] = Histogram(tuple(payload["bounds"]))
            histogram.merge_counts(
                payload["counts"], payload["total"], payload["count"]
            )


# ----------------------------------------------------------------------
# the module-level registry (None = metrics disabled, the default)
# ----------------------------------------------------------------------
METRICS: MetricsRegistry | None = None


def enable_metrics() -> MetricsRegistry:
    """Install a fresh process-wide registry and return it."""
    global METRICS
    METRICS = MetricsRegistry()
    return METRICS


def disable_metrics() -> None:
    """Remove the process-wide registry."""
    global METRICS
    METRICS = None


@contextmanager
def collecting() -> Iterator[MetricsRegistry]:
    """Scoped metrics collection: enable on entry, restore previous on exit."""
    global METRICS
    previous = METRICS
    registry = MetricsRegistry()
    METRICS = registry
    try:
        yield registry
    finally:
        METRICS = previous
