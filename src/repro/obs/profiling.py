"""Opt-in per-stage wall/CPU profiling hooks.

Experiment drivers and environment factories wrap their phases in
:func:`stage`; when profiling is disabled (the default) the context manager
yields immediately, and when enabled each stage accumulates wall-clock and
CPU seconds plus a call count.  Benchmarks embed the snapshot in their
``BENCH_*.json`` so a regression can be attributed to a stage instead of
just a total.

Profiling measures real time, so — unlike traces — its numbers are *not*
deterministic and never belong in golden artifacts.
"""

from __future__ import annotations

import sys
import time
from contextlib import contextmanager
from typing import Iterator

#: Reserved key carrying the peak-RSS sample through :meth:`Profiler.dump`,
#: distinct from any stage name (stage names never use dunder framing).
_PEAK_RSS_KEY = "__peak_rss_kb__"


def peak_rss_kb() -> int | None:
    """This process's lifetime peak resident set size in KiB, or None.

    Zero-dependency: ``resource.getrusage`` where available (Linux reports
    ``ru_maxrss`` in KiB, macOS in bytes), falling back to ``VmHWM`` from
    ``/proc/self/status``.  The value is process-lifetime-monotonic — it
    never decreases — so flat-memory assertions must compare *separate
    processes*, not phases of one.
    """
    try:
        import resource

        peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        if peak > 0:
            return int(peak // 1024) if sys.platform == "darwin" else int(peak)
    except (ImportError, OSError, ValueError):
        pass
    try:
        with open("/proc/self/status", encoding="ascii") as handle:
            for line in handle:
                if line.startswith("VmHWM:"):
                    return int(line.split()[1])
    except (OSError, ValueError, IndexError):
        pass
    return None


class StageTiming:
    """Accumulated timings for one named stage."""

    __slots__ = ("wall", "cpu", "calls")

    def __init__(self) -> None:
        self.wall = 0.0
        self.cpu = 0.0
        self.calls = 0

    def as_dict(self) -> dict:
        return {
            "wall_seconds": round(self.wall, 6),
            "cpu_seconds": round(self.cpu, 6),
            "calls": self.calls,
        }


class Profiler:
    """Accumulates :class:`StageTiming` records per stage name."""

    def __init__(self) -> None:
        self.stages: dict[str, StageTiming] = {}
        #: Highest peak-RSS sample seen by this profiler (own process and,
        #: after :meth:`merge_dump`, every worker's); 0 until sampled.
        self.peak_rss_kb = 0

    def refresh_peak_rss(self) -> int:
        """Re-sample this process's peak RSS and fold it in (max)."""
        sample = peak_rss_kb()
        if sample is not None and sample > self.peak_rss_kb:
            self.peak_rss_kb = sample
        return self.peak_rss_kb

    @contextmanager
    def stage(self, name: str) -> Iterator[None]:
        """Time one execution of stage *name* (re-entrant across calls)."""
        timing = self.stages.get(name)
        if timing is None:
            timing = self.stages[name] = StageTiming()
        wall0 = time.perf_counter()
        cpu0 = time.process_time()
        try:
            yield
        finally:
            timing.wall += time.perf_counter() - wall0
            timing.cpu += time.process_time() - cpu0
            timing.calls += 1

    def snapshot(self) -> dict:
        """All stage timings as a sorted JSON-ready dict.

        Includes a ``peak_rss_kb`` entry (plain int, not a stage dict) with
        the highest resident-set sample across this process and any merged
        workers; renderers treat non-dict values as summary facts.
        """
        out: dict = {name: t.as_dict() for name, t in sorted(self.stages.items())}
        out["peak_rss_kb"] = self.refresh_peak_rss()
        return out

    # ------------------------------------------------------------------
    # cross-process merging (the worker-pool snapshot path)
    # ------------------------------------------------------------------
    def dump(self) -> dict:
        """Raw per-stage timings, picklable, for shipping out of a worker.

        Carries the worker's peak-RSS sample under a reserved key so the
        parent can take the max across the fleet.
        """
        out: dict = {
            name: {"wall": t.wall, "cpu": t.cpu, "calls": t.calls}
            for name, t in self.stages.items()
        }
        out[_PEAK_RSS_KEY] = self.refresh_peak_rss()
        return out

    def merge_dump(self, dump: dict) -> None:
        """Fold one worker's :meth:`dump` into this profiler.

        Wall/CPU seconds and call counts add per stage, so a parallel run's
        parent profile reports the *total* work each stage performed across
        all workers (the parent's own ``stage()`` spans still measure the
        map's wall-clock envelope).  Peak RSS merges by max: the reported
        figure is the hungriest single process, not a meaningless sum.
        """
        for name, payload in sorted(dump.items()):
            if name == _PEAK_RSS_KEY:
                if payload > self.peak_rss_kb:
                    self.peak_rss_kb = payload
                continue
            timing = self.stages.get(name)
            if timing is None:
                timing = self.stages[name] = StageTiming()
            timing.wall += payload["wall"]
            timing.cpu += payload["cpu"]
            timing.calls += payload["calls"]

    def render(self) -> str:
        """A human-readable per-stage table."""
        lines = [f"{'stage':40s} {'wall s':>10s} {'cpu s':>10s} {'calls':>6s}"]
        for name, timing in sorted(self.stages.items()):
            lines.append(
                f"{name:40s} {timing.wall:10.4f} {timing.cpu:10.4f} {timing.calls:6d}"
            )
        lines.append(f"peak RSS: {self.refresh_peak_rss()} KiB")
        return "\n".join(lines)

    def reset(self) -> None:
        self.stages.clear()
        self.peak_rss_kb = 0


# ----------------------------------------------------------------------
# the module-level profiler (None = profiling disabled, the default)
# ----------------------------------------------------------------------
PROFILER: Profiler | None = None


def enable_profiling() -> Profiler:
    """Install a fresh process-wide profiler and return it."""
    global PROFILER
    PROFILER = Profiler()
    return PROFILER


def disable_profiling() -> None:
    """Remove the process-wide profiler."""
    global PROFILER
    PROFILER = None


@contextmanager
def profiled() -> Iterator[Profiler]:
    """Scoped profiling: enable on entry, restore the previous state on exit.

    (Named ``profiled`` rather than ``profiling`` so the re-export in
    ``repro.obs`` cannot shadow this submodule's name on the package.)
    """
    global PROFILER
    previous = PROFILER
    profiler = Profiler()
    PROFILER = profiler
    try:
        yield profiler
    finally:
        PROFILER = previous


@contextmanager
def stage(name: str) -> Iterator[None]:
    """Time *name* on the active profiler; a fast no-op when disabled."""
    profiler = PROFILER
    if profiler is None:
        yield
        return
    with profiler.stage(name):
        yield
