"""``repro.obs`` — flow tracing, metrics, and profiling hooks.

Three independent, individually-toggled facilities, all **off by default**
with near-zero disabled overhead (one attribute load + ``is not None`` per
instrumented site):

* :mod:`repro.obs.trace` — the flow tracer: a flight-recorder ring buffer of
  span/event records covering hop traversals, fragment reassembly, rule
  matches, classifier state transitions and replay-layer ARQ, exportable as
  deterministic JSON lines (``--trace`` / ``--trace-out``).
* :mod:`repro.obs.metrics` — counters/gauges/histograms with a sorted
  snapshot, embedded in reports and printable from the CLI (``--metrics``).
* :mod:`repro.obs.profiling` — opt-in per-stage wall/CPU timers surfaced in
  ``BENCH_*.json``.

On top of the recorders sit the analysis tools:

* :mod:`repro.obs.analyze` — the trace query engine (``liberate obs
  query`` / ``obs report``): index an exported trace by flow, kind and
  rule; timelines and aggregate statistics.
* :mod:`repro.obs.diff` — differential trace diffing (``liberate obs
  diff``): align two traces and report the first structural and first
  decision divergence.
* :mod:`repro.obs.history` — the benchmark-regression watchdog engine
  (``liberate obs watch`` / ``benchmarks/watchdog.py``).
* :mod:`repro.obs.live` — the telemetry event bus: structured lifecycle
  events (experiment/cell/sample progress, pool dispatch/retry/circuit,
  fault injections, verdicts) buffered per pool task for a byte-deterministic
  ``events.jsonl`` and optionally streamed to a live terminal progress view.
* :mod:`repro.obs.report_html` — the zero-dependency, self-contained HTML
  experiment dashboard (``liberate obs html`` / ``--dashboard``).
* :mod:`repro.obs.coverage` — the rule/automaton coverage profiler
  (``--coverage`` / ``liberate obs coverage``): per-rule hit counts against
  a registered universe (dead-rule reporting), automaton state/edge visit
  arrays, and the env × technique coverage matrix.
* :mod:`repro.obs.provenance` — the verdict-provenance reconstructor
  (``liberate obs explain``): fold an exported trace into per-flow causal
  chains linking each verdict to the rule, bytes, normalizer/fragment and
  state decisions that produced it.
* :mod:`repro.obs.witness` — the minimal-witness extractor (``liberate obs
  witness``): delta-debug a payload down to the minimal byte set that still
  flips a classifier's verdict, replayed through the deterministic netsim.

The live serving path adds the **operational** layer (wall-clock by design,
segregated from every deterministic guarantee above):

* :mod:`repro.obs.ops` — log-bucketed latency recorders, SLO policies and
  the asyncio ops endpoint (``/metrics`` / ``/healthz`` / ``/statusz``
  behind ``liberate serve --ops-port``).
* :mod:`repro.obs.flight` — the always-on sampled flight recorder that
  dumps trace-shaped JSONL evidence once per anomaly episode
  (``liberate obs flight``).

See ``docs/OBSERVABILITY.md`` for the trace schema, metric catalog and the
"Operating liberate live" runbook.
"""

from repro.obs.analyze import TraceIndex, summarize_tracer
from repro.obs.coverage import (
    COVERAGE_SCHEMA_VERSION,
    CoverageRecorder,
    automaton_digest,
    covering,
    disable_coverage,
    enable_coverage,
    ruleset_scope,
)
from repro.obs.diff import TraceDiff, diff_traces
from repro.obs.flight import FlightRecorder, disable_flight, enable_flight
from repro.obs.live import (
    EVENTS_SCHEMA_VERSION,
    LiveEvent,
    LiveProgressView,
    TelemetryBus,
    bus_on,
    disable_bus,
    enable_bus,
    load_events_jsonl,
)
from repro.obs.metrics import (
    LATENCY_BUCKETS,
    OPS_PREFIX,
    MetricsRegistry,
    collecting,
    disable_metrics,
    enable_metrics,
    log_bucket_bounds,
)
from repro.obs.ops import (
    LatencyRecorder,
    OpsRegistry,
    OpsServer,
    SLOPolicy,
    disable_ops,
    enable_ops,
    evaluate_health,
    ops_recording,
    render_prometheus,
)
from repro.obs.profiling import (
    Profiler,
    disable_profiling,
    enable_profiling,
    profiled,
    stage,
)
from repro.obs.report_html import (
    DASHBOARD_SCHEMA_VERSION,
    HEADLINE_METRICS,
    build_model,
    missing_metric_keys,
    render_dashboard,
    write_dashboard,
)
from repro.obs.provenance import (
    PROVENANCE_SCHEMA_VERSION,
    explain_flow,
    format_explain,
)
from repro.obs.trace import (
    TRACE_SCHEMA_VERSION,
    FlowTracer,
    TraceEvent,
    disable_tracing,
    enable_tracing,
    load_jsonl,
    structural_view,
    tracing,
)

__all__ = [
    "COVERAGE_SCHEMA_VERSION",
    "DASHBOARD_SCHEMA_VERSION",
    "EVENTS_SCHEMA_VERSION",
    "HEADLINE_METRICS",
    "PROVENANCE_SCHEMA_VERSION",
    "TRACE_SCHEMA_VERSION",
    "CoverageRecorder",
    "FlowTracer",
    "LiveEvent",
    "LiveProgressView",
    "TelemetryBus",
    "TraceEvent",
    "TraceIndex",
    "TraceDiff",
    "MetricsRegistry",
    "Profiler",
    "LATENCY_BUCKETS",
    "OPS_PREFIX",
    "LatencyRecorder",
    "OpsRegistry",
    "OpsServer",
    "SLOPolicy",
    "FlightRecorder",
    "log_bucket_bounds",
    "evaluate_health",
    "render_prometheus",
    "enable_ops",
    "disable_ops",
    "ops_recording",
    "enable_flight",
    "disable_flight",
    "diff_traces",
    "summarize_tracer",
    "enable_tracing",
    "disable_tracing",
    "tracing",
    "enable_metrics",
    "disable_metrics",
    "collecting",
    "enable_coverage",
    "disable_coverage",
    "covering",
    "automaton_digest",
    "ruleset_scope",
    "explain_flow",
    "format_explain",
    "enable_profiling",
    "disable_profiling",
    "profiled",
    "stage",
    "enable_bus",
    "disable_bus",
    "bus_on",
    "build_model",
    "render_dashboard",
    "write_dashboard",
    "missing_metric_keys",
    "load_events_jsonl",
    "load_jsonl",
    "structural_view",
    "observability_off",
]


def observability_off() -> None:
    """Disable every obs facility in one call (test teardown)."""
    disable_tracing()
    disable_metrics()
    disable_profiling()
    disable_bus()
    disable_ops()
    disable_flight()
    disable_coverage()
