"""Verdict provenance: *why* a flow got the verdict it got.

The trace query engine (:mod:`repro.obs.analyze`) filters and counts; this
module reconstructs causality.  Given an indexed trace and a flow key it
folds the flow's timeline into a **provenance chain** — every verdict the
classifiers reached for that flow, each annotated with the ordered list of
decisions that led to it: flow creation, normalizer drops/scrubs/coalesces,
virtual fragment reassembly, protocol-anchor outcomes, the winning rule
match (with its byte range, automaton identity and scan state), plus the
state-management events that can change a verdict's meaning after the fact
(load sheds, state flushes, RST timeout reductions, endpoint blocks).

The chain is a plain schema-versioned dict — JSON for ``--json``, a
tree-shaped terminal rendering otherwise — built read-only from the same
event dicts every other analysis tool consumes, so it works on live
tracers, golden artifacts and merged parallel shard traces alike.
"""

from __future__ import annotations

from typing import Mapping

from repro.obs.analyze import TraceIndex, flow_of

#: Bumped when the chain layout changes shape; stamped into every chain.
PROVENANCE_SCHEMA_VERSION = 1

#: Kinds that *cause* or shape a verdict, in the flow's own timeline.  A
#: verdict-bearing event closes the current chain segment; everything else
#: here is collected as a cause of the next verdict (or reported as
#: "aftermath" when no further verdict follows).
_CAUSE_KINDS = frozenset(
    {
        "mbx.flow_created",
        "mbx.flow_shed",
        "mbx.anchor",
        "mbx.frag_reassembled",
        "norm.drop",
        "norm.scrub",
        "norm.coalesce",
        "frag.hold",
        "frag.reassembled",
        "frag.expired",
        "mbx.rule_match",
        "mbx.flow_flushed",
        "mbx.rst_timeout_reduced",
        "mbx.endpoint_block",
        "mbx.endpoint_block_hit",
        "hop.drop",
        "fault.drop",
    }
)

#: Kinds that conclude a chain segment with a classification outcome.
_VERDICT_KINDS = frozenset({"mbx.verdict", "replay.verdict"})


def _strip(event: Mapping) -> dict:
    """An event reduced to its informative fields (drop Nones and the seq)."""
    return {
        key: value
        for key, value in event.items()
        if value is not None and key not in ("flow",)
    }


def explain_flow(index: TraceIndex, flow: str) -> dict:
    """The provenance chain of *flow* as a JSON-ready dict.

    *flow* accepts the same exact-or-substring addressing as
    :meth:`TraceIndex.timeline` (ambiguity raises ``ValueError``).  Returns
    a dict with the resolved flow key, the verdict segments (each verdict
    with its ordered causes), and any trailing events after the last
    verdict.  A flow with no events yields ``verdicts == []`` and
    ``resolved is None``.
    """
    timeline = index.timeline(flow)
    resolved = flow_of(timeline[0]) if timeline else None
    verdicts: list[dict] = []
    pending: list[dict] = []
    other_kinds: dict[str, int] = {}
    for event in timeline:
        kind = event.get("kind", "?")
        if kind in _VERDICT_KINDS:
            verdicts.append(
                {
                    "verdict": event.get("verdict"),
                    "kind": kind,
                    "element": event.get("element"),
                    "time": event.get("time"),
                    "seq": event.get("seq"),
                    "reason": event.get("reason"),
                    "causes": pending,
                }
            )
            pending = []
        elif kind in _CAUSE_KINDS:
            pending.append(_strip(event))
        else:
            # Transit noise (hop.forward, packet spans, ARQ...) — tallied so
            # the chain accounts for every event without drowning in them.
            other_kinds[kind] = other_kinds.get(kind, 0) + 1
    return {
        "schema": PROVENANCE_SCHEMA_VERSION,
        "flow": flow,
        "resolved": resolved,
        "events": len(timeline),
        "verdicts": verdicts,
        "aftermath": pending,
        "other_kinds": dict(sorted(other_kinds.items())),
    }


def _render_cause(cause: Mapping) -> str:
    detail = " ".join(
        f"{key}={value}"
        for key, value in cause.items()
        if key not in ("kind", "time", "seq")
    )
    time = cause.get("time", "")
    return f"[{time}] {cause.get('kind', '?')}  {detail}".rstrip()


def format_explain(chain: Mapping) -> str:
    """Render a provenance chain as a causal tree for the terminal."""
    resolved = chain.get("resolved")
    if resolved is None:
        return f"flow {chain.get('flow')!r}: no events in trace"
    lines = [f"flow {resolved}  ({chain['events']} events)"]
    for segment in chain["verdicts"]:
        reason = segment.get("reason")
        suffix = f" ({reason})" if reason else ""
        lines.append(
            f"└─ verdict {segment.get('verdict')!r}{suffix} "
            f"via {segment.get('kind')} at {segment.get('element')} "
            f"t={segment.get('time')}"
        )
        causes = segment["causes"]
        for position, cause in enumerate(causes):
            branch = "└─" if position == len(causes) - 1 else "├─"
            lines.append(f"   {branch} {_render_cause(cause)}")
        if not causes:
            lines.append("   └─ (no recorded causes)")
    if not chain["verdicts"]:
        lines.append("└─ (no verdict reached)")
    if chain.get("aftermath"):
        lines.append("aftermath (after the last verdict):")
        for cause in chain["aftermath"]:
            lines.append(f"   • {_render_cause(cause)}")
    if chain.get("other_kinds"):
        noise = ", ".join(
            f"{kind}×{count}" for kind, count in chain["other_kinds"].items()
        )
        lines.append(f"other events: {noise}")
    return "\n".join(lines)
