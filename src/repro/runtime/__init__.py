"""Deterministic parallel execution for experiments.

The experiment drivers (Table 3, the §6 efficiency cases, Figure 4's
hour × trial sweep, distributed characterization) decompose into fully
independent tasks — each builds its own simulated environment from a
deterministic factory.  :class:`WorkerPool` runs such task lists on a
serial, thread, or process backend with results always returned in task
order, so parallel runs are output-identical to serial ones.

Resilient runs pass a :class:`RetryPolicy`; exhausted tasks surface as
structured :class:`TaskFailure` results instead of killing the run.
"""

from repro.runtime.pool import (
    Backend,
    RetryPolicy,
    TaskFailure,
    WorkerPool,
    derive_seed,
    resolve_backend,
)

__all__ = [
    "Backend",
    "RetryPolicy",
    "TaskFailure",
    "WorkerPool",
    "derive_seed",
    "resolve_backend",
]
