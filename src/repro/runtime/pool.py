"""Worker pool with serial, thread and process backends.

Design rules that keep parallel output identical to serial output:

* **Result ordering** — :meth:`WorkerPool.map` always returns results in
  input order, whatever order tasks finish in.
* **Deterministic seeding** — tasks that want per-task randomness derive it
  from :func:`derive_seed` (a stable SHA-256 of the base seed and task
  labels), never from global RNG state, so a task's behaviour does not
  depend on which worker ran it or what ran before it.
* **Self-contained tasks** — the experiment drivers pass top-level
  functions and picklable arguments; each task constructs its own
  environment from a deterministic factory rather than sharing live
  simulator state across workers.

The backend defaults to the ``REPRO_RUNTIME_BACKEND`` environment variable
(``serial`` when unset), so any experiment can be parallelized without
touching call sites.

Resilient execution: passing a :class:`RetryPolicy` to :meth:`WorkerPool.map`
turns task failures into retries with capped exponential backoff, per-task
timeouts, crashed-worker recovery (a killed process worker rebuilds the
executor and requeues the task), and a consecutive-failure circuit breaker.
On exhaustion a task's slot holds a structured :class:`TaskFailure` instead
of the whole run dying.  Without a policy, behaviour is identical to before.

Sharded tracing: when a flow tracer is installed (``--trace``), a parallel
map no longer has to fall back to serial execution.  Each task runs under a
fresh per-task shard tracer, exports its events to a shard file, and the
pool merges the shards back into the parent tracer in (task index, seq)
order after the map — producing a trace byte-identical to the serial run's
(each task's events are contiguous and in task order either way).

Cross-process observability: the same guarantee covers the metrics
registry, the profiler and the telemetry bus.  A concurrent map whose
parent has any of them enabled wraps each task in :class:`_ObsCall`, which
installs fresh worker-side recorders, snapshots them at task end, and ships
the snapshots home with the result; the parent merges them in (task index,
key) order.  Counters and stage timings sum, gauges keep the last task's
write, telemetry buffers append in task order — so a process-pool run's
merged metrics snapshot is identical to a serial run's, and experiment
drivers no longer force the serial backend when metering.
"""

from __future__ import annotations

import enum
import hashlib
import logging
import os
import random
import tempfile
import time
from concurrent.futures import (
    CancelledError,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
)
from concurrent.futures import TimeoutError as FutureTimeoutError
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Callable, Iterable, Sequence, TypeVar

from repro.obs import coverage as obs_coverage
from repro.obs import flight as obs_flight
from repro.obs import live as obs_live
from repro.obs import metrics as obs_metrics
from repro.obs import ops as obs_ops
from repro.obs import profiling as obs_profiling
from repro.obs import trace as obs_trace

logger = logging.getLogger(__name__)

ENV_BACKEND = "REPRO_RUNTIME_BACKEND"
ENV_WORKERS = "REPRO_RUNTIME_WORKERS"

T = TypeVar("T")
R = TypeVar("R")


class Backend(enum.Enum):
    """How a :class:`WorkerPool` executes its tasks."""

    SERIAL = "serial"
    THREAD = "thread"
    PROCESS = "process"


def resolve_backend(backend: Backend | str | None = None) -> Backend:
    """Normalize a backend argument, falling back to the environment.

    ``None`` reads ``REPRO_RUNTIME_BACKEND``; an unset or unknown variable
    selects the serial backend (the always-correct default).
    """
    if isinstance(backend, Backend):
        return backend
    if backend is None:
        backend = os.environ.get(ENV_BACKEND, "")
    try:
        return Backend(str(backend).strip().lower())
    except ValueError:
        return Backend.SERIAL


def derive_seed(base: int, *parts: object) -> int:
    """A stable 63-bit seed from a base seed and task labels.

    Unlike ``hash()``, the derivation is identical across processes and
    interpreter runs (no hash randomization), so a task seeded with
    ``derive_seed(base, "figure4", hour, trial)`` behaves the same on every
    backend and every worker.
    """
    digest = hashlib.sha256(repr((base, parts)).encode()).digest()
    return int.from_bytes(digest[:8], "big") & 0x7FFF_FFFF_FFFF_FFFF


@dataclass(frozen=True)
class TaskFailure:
    """Structured record of a task that exhausted its retries.

    Occupies the failed task's slot in the results list so callers can
    recover per-task (rerun inline, fill defaults, report) instead of the
    whole run dying on the first bad task.
    """

    index: int
    attempts: int
    error_type: str
    message: str
    backend: str
    circuit_open: bool = False

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        state = "circuit-open" if self.circuit_open else f"{self.attempts} attempts"
        return f"TaskFailure(task {self.index}, {state}: {self.error_type}: {self.message})"


@dataclass(frozen=True)
class RetryPolicy:
    """How :meth:`WorkerPool.map` should survive failing tasks.

    Attributes:
        max_attempts: total tries per task before a :class:`TaskFailure`.
        timeout: per-attempt wall-clock timeout in seconds (concurrent
            backends only; None disables).
        backoff_base / backoff_factor / backoff_max: capped exponential
            backoff — attempt *n* (0-based) waits
            ``min(backoff_base * backoff_factor**n, backoff_max)`` seconds.
        circuit_threshold: consecutive task *exhaustions* after which the
            circuit opens and remaining tasks fail fast with
            ``circuit_open=True`` (guards against systemic breakage burning
            the full retry budget task after task).
    """

    max_attempts: int = 3
    timeout: float | None = None
    backoff_base: float = 0.05
    backoff_factor: float = 2.0
    backoff_max: float = 2.0
    circuit_threshold: int = 5

    def delay_for(self, attempt: int) -> float:
        """Backoff delay before retrying after failed attempt *attempt* (0-based)."""
        return min(self.backoff_base * (self.backoff_factor**attempt), self.backoff_max)


class _SeededCall:
    """Picklable wrapper seeding the global RNG deterministically per task."""

    def __init__(self, fn: Callable[[T], R], seed: int, index: int) -> None:
        self.fn = fn
        self.seed = seed
        self.index = index

    def __call__(self, item: T) -> R:
        random.seed(derive_seed(self.seed, self.index))
        return self.fn(item)


class _ObsPayload:
    """A task result bundled with the worker-side observability it produced."""

    __slots__ = ("result", "metrics", "profile", "events", "coverage")

    def __init__(self, result, metrics, profile, events, coverage=None) -> None:
        self.result = result
        self.metrics = metrics
        self.profile = profile
        self.events = events
        self.coverage = coverage


class _ObsCall:
    """Picklable wrapper shipping a task's observability home with its result.

    Process-pool workers have their own (unobserved) metrics registry,
    profiler and telemetry bus, so anything they record is lost unless it
    travels back with the result.  This wrapper installs fresh worker-side
    recorders around the task, snapshots them at task end, and returns an
    :class:`_ObsPayload` the parent unwraps — merging metrics/profile dumps
    and telemetry buffers in task-index order, reproducing exactly what a
    serial run would have recorded.

    Thread-pool tasks share the parent's registry and profiler (their
    increments already land home, and swapping the process-global registry
    per-thread would race), so they only buffer telemetry, which the bus
    routes per-thread.  A failing attempt discards its buffered events —
    the retry that eventually succeeds owns the task's telemetry, matching
    the trace sharder's retry semantics.
    """

    def __init__(
        self, call: Callable[[T], R], ship_metrics: bool, ship_profile: bool,
        buffer_events: bool, stream=None, ship_coverage: bool = False,
    ) -> None:
        self.call = call
        self.ship_metrics = ship_metrics
        self.ship_profile = ship_profile
        self.buffer_events = buffer_events
        self.stream = stream
        self.ship_coverage = ship_coverage

    def __call__(self, item: T) -> "_ObsPayload":
        if self.buffer_events:
            obs_live.begin_task(stream=self.stream)
        registry = obs_metrics.enable_metrics() if self.ship_metrics else None
        profiler = obs_profiling.enable_profiling() if self.ship_profile else None
        recorder = obs_coverage.enable_coverage() if self.ship_coverage else None
        try:
            result = self.call(item)
        except BaseException:
            if self.buffer_events:
                obs_live.end_task()
            raise
        events = obs_live.end_task() if self.buffer_events else None
        return _ObsPayload(
            result,
            registry.dump() if registry is not None else None,
            profiler.dump() if profiler is not None else None,
            events,
            recorder.dump() if recorder is not None else None,
        )


class _ShardedCall:
    """Picklable wrapper running one task under a fresh trace shard.

    In the worker, :func:`repro.obs.trace.begin_shard` routes the task's
    emissions into a private :class:`~repro.obs.trace.FlowTracer`; on
    success the shard is exported to ``shard-<index>.jsonl`` (written to a
    temp name and renamed, so a crashed worker can never leave a truncated
    shard) for the parent to merge.  A failing attempt writes nothing — the
    retry that eventually succeeds owns the shard file.
    """

    def __init__(
        self, call: Callable[[T], R], index: int, shard_dir: str, capacity: int
    ) -> None:
        self.call = call
        self.index = index
        self.shard_dir = shard_dir
        self.capacity = capacity

    def __call__(self, item: T) -> R:
        shard = obs_trace.begin_shard(self.capacity)
        try:
            result = self.call(item)
        finally:
            obs_trace.end_shard()
        path = os.path.join(self.shard_dir, obs_trace.shard_filename(self.index))
        tmp_path = f"{path}.tmp"
        shard.export_jsonl(tmp_path)
        os.replace(tmp_path, path)
        return result


class WorkerPool:
    """Run independent tasks on a serial, thread or process backend.

    Args:
        backend: a :class:`Backend`, its string value, or ``None`` to read
            ``REPRO_RUNTIME_BACKEND`` (default serial).
        max_workers: worker count for the concurrent backends; ``None``
            reads ``REPRO_RUNTIME_WORKERS``, falling back to the CPU count.
            Non-positive counts are rejected.
    """

    def __init__(
        self, backend: Backend | str | None = None, max_workers: int | None = None
    ) -> None:
        self.backend = resolve_backend(backend)
        if max_workers is None:
            max_workers = _workers_from_env()
        elif max_workers <= 0:
            raise ValueError(f"max_workers must be a positive integer, got {max_workers}")
        self.max_workers = max_workers if max_workers else (os.cpu_count() or 1)

    def map(
        self,
        fn: Callable[[T], R],
        items: Iterable[T],
        *,
        seed: int | None = None,
        retry: RetryPolicy | None = None,
    ) -> list[R | TaskFailure]:
        """Apply *fn* to every item, returning results in input order.

        With *seed* set, each task runs with the global ``random`` module
        seeded to ``derive_seed(seed, task_index)`` — identical on every
        backend.  (Serial callers relying on ambient RNG state should leave
        *seed* unset and use the serial backend.)

        With *retry* set, failing tasks are retried per the policy and a
        task that exhausts its attempts yields a :class:`TaskFailure` in its
        slot instead of propagating; without it, the first exception
        propagates exactly as before.

        With a flow tracer installed, a concurrent map records each task
        into its own trace shard and merges the shards back into the
        tracer in (task index, seq) order — the merged trace is
        byte-identical to what the serial backend would have recorded.
        The metrics registry, profiler and telemetry bus get the same
        treatment through per-task snapshots shipped home with results.
        """
        tasks: Sequence[T] = list(items)
        if not tasks:
            return []
        calls: Sequence[Callable[[T], R]]
        if seed is not None:
            calls = [_SeededCall(fn, seed, i) for i in range(len(tasks))]
        else:
            calls = [fn] * len(tasks)
        obs_wrapped = self._wrap_obs(calls, len(tasks), retry)
        if obs_wrapped is not None:
            calls = obs_wrapped
        bus = obs_live.BUS
        if bus is not None:
            for index in range(len(tasks)):
                bus.emit("pool.dispatch", task=index)
        tracer = obs_trace.TRACER
        if (
            isinstance(tracer, obs_trace.FlowTracer)
            and self.backend is not Backend.SERIAL
            and len(tasks) > 1
        ):
            results = self._map_sharded(calls, tasks, retry, tracer)
        else:
            results = self._execute(calls, tasks, retry)
        if obs_wrapped is not None:
            results = self._merge_obs_results(results)
        if bus is not None:
            for index, result in enumerate(results):
                bus.emit(
                    "pool.task_done",
                    task=index,
                    ok=not isinstance(result, TaskFailure),
                )
        return results

    def _wrap_obs(
        self,
        calls: Sequence[Callable[[T], R]],
        count: int,
        retry: RetryPolicy | None,
    ) -> list["_ObsCall"] | None:
        """Wrap calls in :class:`_ObsCall` when tasks leave the driver process.

        Serial maps — and single-task concurrent maps without a retry
        policy, which run inline — record straight into the parent's
        facilities and need no wrapping.  Metrics/profile snapshots ship
        only from *process* workers (thread workers share the parent's
        recorders); telemetry buffers ship from both concurrent backends.
        """
        if self.backend is Backend.SERIAL or (count == 1 and retry is None):
            return None
        ship = self.backend is Backend.PROCESS
        ship_metrics = ship and obs_metrics.METRICS is not None
        ship_profile = ship and obs_profiling.PROFILER is not None
        ship_coverage = ship and obs_coverage.COVERAGE is not None
        bus = obs_live.BUS
        if not (ship_metrics or ship_profile or ship_coverage or bus is not None):
            return None
        stream = bus.stream if bus is not None else None
        return [
            _ObsCall(
                call, ship_metrics, ship_profile, bus is not None, stream,
                ship_coverage,
            )
            for call in calls
        ]

    def _merge_obs_results(
        self, results: Sequence["R | TaskFailure | _ObsPayload"]
    ) -> list[R | TaskFailure]:
        """Unwrap :class:`_ObsPayload` results, merging snapshots in task order."""
        merged: list[R | TaskFailure] = []
        buffers: list[list[tuple[str, dict]]] = []
        for result in results:
            if not isinstance(result, _ObsPayload):
                merged.append(result)  # a TaskFailure slot: nothing shipped
                continue
            if result.metrics is not None and obs_metrics.METRICS is not None:
                obs_metrics.METRICS.merge_dump(result.metrics)
            if result.profile is not None and obs_profiling.PROFILER is not None:
                obs_profiling.PROFILER.merge_dump(result.profile)
            if result.coverage is not None and obs_coverage.COVERAGE is not None:
                obs_coverage.COVERAGE.merge_dump(result.coverage)
            if result.events is not None:
                buffers.append(result.events)
            merged.append(result.result)
        if buffers and obs_live.BUS is not None:
            obs_live.BUS.absorb(buffers)
        return merged

    def _execute(
        self,
        calls: Sequence[Callable[[T], R]],
        tasks: Sequence[T],
        retry: RetryPolicy | None,
    ) -> list[R | TaskFailure]:
        if retry is not None:
            return self._map_resilient(calls, tasks, retry)
        ops = obs_ops.OPS
        if self.backend is Backend.SERIAL or len(tasks) == 1:
            if ops is None:
                return [call(task) for call, task in zip(calls, tasks)]
            results = []
            for call, task in zip(calls, tasks):
                started = time.perf_counter()
                results.append(call(task))
                ops.record("pool.task", time.perf_counter() - started)
            return results
        workers = min(self.max_workers, len(tasks))
        executor_cls = (
            ThreadPoolExecutor if self.backend is Backend.THREAD else ProcessPoolExecutor
        )
        with executor_cls(max_workers=workers) as executor:
            if ops is None:
                futures = [
                    executor.submit(call, task) for call, task in zip(calls, tasks)
                ]
                return [future.result() for future in futures]
            # Dispatch→done latency per task: the done-callback stamps the
            # completion time (on whichever thread delivers it), and the
            # driver records after collection so the recorder is only ever
            # touched from this thread.
            done_at: list[float] = [0.0] * len(tasks)
            submitted: list[float] = []
            futures = []
            for index, (call, task) in enumerate(zip(calls, tasks)):
                submitted.append(time.perf_counter())
                future = executor.submit(call, task)
                future.add_done_callback(
                    lambda _f, i=index: done_at.__setitem__(i, time.perf_counter())
                )
                futures.append(future)
            results = [future.result() for future in futures]
            for index, dispatch in enumerate(submitted):
                ops.record("pool.task", max(0.0, done_at[index] - dispatch))
            return results

    def _map_sharded(
        self,
        calls: Sequence[Callable[[T], R]],
        tasks: Sequence[T],
        retry: RetryPolicy | None,
        tracer: "obs_trace.FlowTracer",
    ) -> list[R | TaskFailure]:
        """A traced concurrent map: per-task shard files, merged in order.

        The parent tracer is swapped for a :class:`~repro.obs.trace.ShardDispatcher`
        for the duration of the map so worker threads (and forked worker
        processes) route their emissions into per-task shards; pool-level
        events emitted by the driver itself (retries, circuit trips) still
        reach the parent tracer directly.  A task's shard is written only by
        a successful attempt, so retries cannot leave partial shards behind.
        """
        with tempfile.TemporaryDirectory(prefix="repro-trace-shards-") as shard_dir:
            wrapped = [
                _ShardedCall(call, index, shard_dir, tracer.capacity)
                for index, call in enumerate(calls)
            ]
            with obs_trace.shard_scope(tracer):
                results = self._execute(wrapped, tasks, retry)
            merged = obs_trace.merge_shard_dir(tracer, shard_dir, len(tasks))
            logger.debug(
                "merged %d trace events from %d task shards", merged, len(tasks)
            )
        return results

    def run_all(
        self, thunks: Sequence[Callable[[], R]], *, retry: RetryPolicy | None = None
    ) -> list[R | TaskFailure]:
        """Run a heterogeneous list of zero-argument tasks, in order.

        Process backends require the thunks to be picklable (top-level
        functions or ``functools.partial`` over picklable arguments).
        """
        return self.map(_call_thunk, thunks, retry=retry)

    # ------------------------------------------------------------------
    # resilient execution
    # ------------------------------------------------------------------
    def _map_resilient(
        self,
        calls: Sequence[Callable[[T], R]],
        tasks: Sequence[T],
        retry: RetryPolicy,
    ) -> list[R | TaskFailure]:
        # Unlike the fast path, a single task still goes through the
        # executor on concurrent backends: resilience means a crashing or
        # hanging task must not take the driver process down with it.
        if self.backend is Backend.SERIAL:
            return self._resilient_serial(calls, tasks, retry)
        return self._resilient_concurrent(calls, tasks, retry)

    def _resilient_serial(
        self,
        calls: Sequence[Callable[[T], R]],
        tasks: Sequence[T],
        retry: RetryPolicy,
    ) -> list[R | TaskFailure]:
        results: list[R | TaskFailure] = []
        consecutive_failures = 0
        for index, (call, task) in enumerate(zip(calls, tasks)):
            if consecutive_failures >= retry.circuit_threshold:
                results.append(_circuit_failure(index, self.backend))
                continue
            outcome = self._attempt_serial(call, task, index, retry)
            results.append(outcome)
            if isinstance(outcome, TaskFailure):
                consecutive_failures += 1
            else:
                consecutive_failures = 0
        return results

    def _attempt_serial(
        self, call: Callable[[T], R], task: T, index: int, retry: RetryPolicy
    ) -> R | TaskFailure:
        last_error: BaseException | None = None
        for attempt in range(retry.max_attempts):
            if attempt:
                time.sleep(retry.delay_for(attempt - 1))
            try:
                return call(task)
            except Exception as exc:  # noqa: BLE001 - converted to TaskFailure
                last_error = exc
                logger.warning(
                    "task %d attempt %d/%d failed: %s: %s",
                    index,
                    attempt + 1,
                    retry.max_attempts,
                    type(exc).__name__,
                    exc,
                )
                _record_retry(index, attempt + 1, type(exc).__name__, self.backend)
        assert last_error is not None
        _record_exhaustion(index, self.backend)
        return TaskFailure(
            index=index,
            attempts=retry.max_attempts,
            error_type=type(last_error).__name__,
            message=str(last_error),
            backend=self.backend.value,
        )

    def _resilient_concurrent(
        self,
        calls: Sequence[Callable[[T], R]],
        tasks: Sequence[T],
        retry: RetryPolicy,
    ) -> list[R | TaskFailure]:
        workers = min(self.max_workers, len(tasks))
        executor_cls = (
            ThreadPoolExecutor if self.backend is Backend.THREAD else ProcessPoolExecutor
        )
        results: list[R | TaskFailure | None] = [None] * len(tasks)
        # (task index, attempts already made)
        pending: list[tuple[int, int]] = [(i, 0) for i in range(len(tasks))]
        consecutive_failures = 0
        executor = executor_cls(max_workers=workers)
        try:
            while pending:
                if consecutive_failures >= retry.circuit_threshold:
                    for index, _ in pending:
                        results[index] = _circuit_failure(index, self.backend)
                    logger.error(
                        "circuit breaker open after %d consecutive task failures; "
                        "failing %d remaining tasks fast",
                        consecutive_failures,
                        len(pending),
                    )
                    break
                wave = pending
                pending = []
                futures = [
                    executor.submit(calls[index], tasks[index]) for index, _ in wave
                ]
                max_delay = 0.0
                broken = False
                for future, (index, attempts) in zip(futures, wave):
                    try:
                        results[index] = future.result(timeout=retry.timeout)
                        consecutive_failures = 0
                        continue
                    except FutureTimeoutError:
                        error_type, message = "TimeoutError", (
                            f"task exceeded {retry.timeout}s timeout"
                        )
                        broken = True  # the worker is still busy; start fresh
                    except (BrokenProcessPool, CancelledError) as exc:
                        error_type, message = type(exc).__name__, (
                            str(exc) or "worker process died"
                        )
                        broken = True
                    except Exception as exc:  # noqa: BLE001 - retried below
                        error_type, message = type(exc).__name__, str(exc)
                    attempts += 1
                    logger.warning(
                        "task %d attempt %d/%d failed: %s: %s",
                        index,
                        attempts,
                        retry.max_attempts,
                        error_type,
                        message,
                    )
                    _record_retry(index, attempts, error_type, self.backend)
                    if attempts >= retry.max_attempts:
                        _record_exhaustion(index, self.backend)
                        results[index] = TaskFailure(
                            index=index,
                            attempts=attempts,
                            error_type=error_type,
                            message=message,
                            backend=self.backend.value,
                        )
                        consecutive_failures += 1
                    else:
                        pending.append((index, attempts))
                        max_delay = max(max_delay, retry.delay_for(attempts - 1))
                    if broken:
                        executor = self._rebuild_executor(executor, executor_cls, workers)
                        broken = False
                if pending and max_delay:
                    time.sleep(max_delay)
        finally:
            executor.shutdown(wait=False, cancel_futures=True)
        return list(results)  # type: ignore[arg-type]

    def _rebuild_executor(self, executor, executor_cls, workers):
        """Replace an executor whose worker crashed, hung, or was killed."""
        logger.warning("rebuilding %s after worker failure", executor_cls.__name__)
        executor.shutdown(wait=False, cancel_futures=True)
        processes = getattr(executor, "_processes", None)
        if processes:
            for proc in list(processes.values()):
                try:
                    proc.terminate()
                except Exception:  # pragma: no cover - best-effort cleanup
                    pass
        return executor_cls(max_workers=workers)


def _workers_from_env() -> int | None:
    """Parse ``REPRO_RUNTIME_WORKERS``: warn on garbage, reject non-positive."""
    env_workers = os.environ.get(ENV_WORKERS, "")
    if not env_workers:
        return None
    try:
        parsed = int(env_workers)
    except ValueError:
        logger.warning(
            "ignoring %s=%r: not an integer; falling back to the CPU count",
            ENV_WORKERS,
            env_workers,
        )
        return None
    if parsed <= 0:
        raise ValueError(
            f"{ENV_WORKERS} must be a positive integer, got {env_workers!r}"
        )
    return parsed


def _record_retry(index: int, attempt: int, error_type: str, backend: Backend) -> None:
    """Count one failed attempt (retry or final) in the observability layer."""
    if obs_metrics.METRICS is not None:
        obs_metrics.METRICS.inc("pool.retries")
    if obs_trace.TRACER is not None:
        obs_trace.TRACER.emit(
            "pool.retry",
            task=index,
            attempt=attempt,
            error=error_type,
            backend=backend.value,
        )
    if obs_live.BUS is not None:
        obs_live.BUS.emit(
            "pool.retry",
            task=index,
            attempt=attempt,
            error=error_type,
            backend=backend.value,
        )


def _record_exhaustion(index: int, backend: Backend) -> None:
    """Count one task giving up for good (its slot becomes a TaskFailure)."""
    if obs_metrics.METRICS is not None:
        obs_metrics.METRICS.inc("pool.task_failures")
    if obs_trace.TRACER is not None:
        obs_trace.TRACER.emit(
            "pool.task_failed", task=index, backend=backend.value
        )
    if obs_live.BUS is not None:
        obs_live.BUS.emit("pool.task_failed", task=index, backend=backend.value)


def _circuit_failure(index: int, backend: Backend) -> TaskFailure:
    if obs_metrics.METRICS is not None:
        obs_metrics.METRICS.inc("pool.circuit_open")
    if obs_trace.TRACER is not None:
        obs_trace.TRACER.emit("pool.circuit_open", task=index, backend=backend.value)
    if obs_live.BUS is not None:
        obs_live.BUS.emit("pool.circuit_open", task=index, backend=backend.value)
    if obs_flight.FLIGHT is not None:
        # A tripped breaker fails every remaining task the same way; dump
        # the evidence once per trip episode, not once per failed slot.
        obs_flight.FLIGHT.trip(
            "circuit_open", episode="circuit", task=index, backend=backend.value
        )
    return TaskFailure(
        index=index,
        attempts=0,
        error_type="CircuitOpen",
        message="circuit breaker open: too many consecutive task failures",
        backend=backend.value,
        circuit_open=True,
    )


def _call_thunk(thunk: Callable[[], R]) -> R:
    return thunk()
