"""Worker pool with serial, thread and process backends.

Design rules that keep parallel output identical to serial output:

* **Result ordering** — :meth:`WorkerPool.map` always returns results in
  input order, whatever order tasks finish in.
* **Deterministic seeding** — tasks that want per-task randomness derive it
  from :func:`derive_seed` (a stable SHA-256 of the base seed and task
  labels), never from global RNG state, so a task's behaviour does not
  depend on which worker ran it or what ran before it.
* **Self-contained tasks** — the experiment drivers pass top-level
  functions and picklable arguments; each task constructs its own
  environment from a deterministic factory rather than sharing live
  simulator state across workers.

The backend defaults to the ``REPRO_RUNTIME_BACKEND`` environment variable
(``serial`` when unset), so any experiment can be parallelized without
touching call sites.
"""

from __future__ import annotations

import enum
import hashlib
import os
import random
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Callable, Iterable, Sequence, TypeVar

ENV_BACKEND = "REPRO_RUNTIME_BACKEND"
ENV_WORKERS = "REPRO_RUNTIME_WORKERS"

T = TypeVar("T")
R = TypeVar("R")


class Backend(enum.Enum):
    """How a :class:`WorkerPool` executes its tasks."""

    SERIAL = "serial"
    THREAD = "thread"
    PROCESS = "process"


def resolve_backend(backend: Backend | str | None = None) -> Backend:
    """Normalize a backend argument, falling back to the environment.

    ``None`` reads ``REPRO_RUNTIME_BACKEND``; an unset or unknown variable
    selects the serial backend (the always-correct default).
    """
    if isinstance(backend, Backend):
        return backend
    if backend is None:
        backend = os.environ.get(ENV_BACKEND, "")
    try:
        return Backend(str(backend).strip().lower())
    except ValueError:
        return Backend.SERIAL


def derive_seed(base: int, *parts: object) -> int:
    """A stable 63-bit seed from a base seed and task labels.

    Unlike ``hash()``, the derivation is identical across processes and
    interpreter runs (no hash randomization), so a task seeded with
    ``derive_seed(base, "figure4", hour, trial)`` behaves the same on every
    backend and every worker.
    """
    digest = hashlib.sha256(repr((base, parts)).encode()).digest()
    return int.from_bytes(digest[:8], "big") & 0x7FFF_FFFF_FFFF_FFFF


class _SeededCall:
    """Picklable wrapper seeding the global RNG deterministically per task."""

    def __init__(self, fn: Callable[[T], R], seed: int, index: int) -> None:
        self.fn = fn
        self.seed = seed
        self.index = index

    def __call__(self, item: T) -> R:
        random.seed(derive_seed(self.seed, self.index))
        return self.fn(item)


class WorkerPool:
    """Run independent tasks on a serial, thread or process backend.

    Args:
        backend: a :class:`Backend`, its string value, or ``None`` to read
            ``REPRO_RUNTIME_BACKEND`` (default serial).
        max_workers: worker count for the concurrent backends; ``None``
            reads ``REPRO_RUNTIME_WORKERS``, falling back to the CPU count.
    """

    def __init__(
        self, backend: Backend | str | None = None, max_workers: int | None = None
    ) -> None:
        self.backend = resolve_backend(backend)
        if max_workers is None:
            env_workers = os.environ.get(ENV_WORKERS, "")
            max_workers = int(env_workers) if env_workers.isdigit() else None
        self.max_workers = max_workers if max_workers else (os.cpu_count() or 1)

    def map(
        self,
        fn: Callable[[T], R],
        items: Iterable[T],
        *,
        seed: int | None = None,
    ) -> list[R]:
        """Apply *fn* to every item, returning results in input order.

        With *seed* set, each task runs with the global ``random`` module
        seeded to ``derive_seed(seed, task_index)`` — identical on every
        backend.  (Serial callers relying on ambient RNG state should leave
        *seed* unset and use the serial backend.)
        """
        tasks: Sequence[T] = list(items)
        if not tasks:
            return []
        calls: Sequence[Callable[[T], R]]
        if seed is not None:
            calls = [_SeededCall(fn, seed, i) for i in range(len(tasks))]
        else:
            calls = [fn] * len(tasks)
        if self.backend is Backend.SERIAL or len(tasks) == 1:
            return [call(task) for call, task in zip(calls, tasks)]
        workers = min(self.max_workers, len(tasks))
        executor_cls = (
            ThreadPoolExecutor if self.backend is Backend.THREAD else ProcessPoolExecutor
        )
        with executor_cls(max_workers=workers) as executor:
            futures = [executor.submit(call, task) for call, task in zip(calls, tasks)]
            return [future.result() for future in futures]

    def run_all(self, thunks: Sequence[Callable[[], R]]) -> list[R]:
        """Run a heterogeneous list of zero-argument tasks, in order.

        Process backends require the thunks to be picklable (top-level
        functions or ``functools.partial`` over picklable arguments).
        """
        return self.map(_call_thunk, thunks)


def _call_thunk(thunk: Callable[[], R]) -> R:
    return thunk()
