"""The interface evasion techniques use to drive a replay.

A technique's ``apply(runner)`` emits the client side of the trace however
it likes: default segments, split/reordered pieces, IP fragments, inert
packets, pauses.  The runner tracks inert-packet markers so the session can
later answer the paper's RS? question — did the crafted packets physically
reach the server?
"""

from __future__ import annotations

import itertools
from typing import Any

from repro.endpoint.rawclient import MTU_PAYLOAD, RawTCPClient, RawUDPClient, SegmentPlan
from repro.netsim.clock import VirtualClock
from repro.packets.flow import Direction
from repro.packets.fragment import fragment_packet
from repro.packets.ip import IPPacket
from repro.packets.tcp import TCPFlags, TCPSegment
from repro.traffic.trace import Trace

_marker_counter = itertools.count(1)


def make_inert_payload(size: int = 64, tag: str = "inert") -> bytes:
    """An innocuous, uniquely tagged payload for inert packets.

    The tag makes the payload recognizable in the server's raw arrivals
    (the RS? measurement) without ever matching a classification keyword.
    """
    marker = f"--{tag}-{next(_marker_counter):06d}--".encode("ascii")
    if size <= len(marker):
        return marker[: max(size, 8)]
    filler = b"\x5a" * (size - len(marker))
    return marker + filler


class ReplayRunner:
    """Emits the client side of a trace, under a technique's control.

    Attributes:
        trace: the dialogue being replayed.
        client: the raw TCP or UDP client.
        clock: the shared virtual clock.
        context: the technique's :class:`EvasionContext` (may be None).
        inert_markers: payload markers of packets expected *not* to be
            delivered to the server application.
        technique_name: label recorded in the outcome.
    """

    def __init__(
        self,
        trace: Trace,
        client: RawTCPClient | RawUDPClient,
        clock: VirtualClock,
        context: Any = None,
    ) -> None:
        self.trace = trace
        self.client = client
        self.clock = clock
        self.context = context
        self.inert_markers: list[bytes] = []
        self._fragmented_datagrams = 0
        self.sent_inert_rst = False
        self.technique_name: str | None = None
        self.overhead_packets = 0
        self.overhead_bytes = 0
        self.overhead_seconds = 0.0

    # ------------------------------------------------------------------
    # message/timing views
    # ------------------------------------------------------------------
    @property
    def client_messages(self) -> list[bytes]:
        """The client payloads of the trace, in order."""
        return self.trace.client_payloads()

    def _client_times(self) -> list[float]:
        return [
            p.time for p in self.trace.packets if p.direction is Direction.CLIENT_TO_SERVER
        ]

    # ------------------------------------------------------------------
    # default emission
    # ------------------------------------------------------------------
    def send_default(self) -> None:
        """Replay the client side unmodified: in-order, MSS-sized segments."""
        if self.trace.protocol == "tcp":
            for message in self.client_messages:
                self.send_message(message)
        else:
            for message in self.client_messages:
                self.send_datagram(message)

    # ------------------------------------------------------------------
    # TCP emission
    # ------------------------------------------------------------------
    def send_message(self, payload: bytes, mss: int = MTU_PAYLOAD) -> None:
        """Send one application message as plain in-order segments."""
        tcp = self._tcp()
        tcp.send_payload(payload, mss=mss)

    def send_inert(self, plan: SegmentPlan, count_overhead: bool = True) -> None:
        """Send one inert TCP packet (does not advance the send sequence)."""
        tcp = self._tcp()
        plan.advances_seq = False
        self.inert_markers.append(plan.payload)
        if count_overhead:
            self.overhead_packets += 1
            self.overhead_bytes += len(plan.payload) + 40
        tcp.send_plan(plan)

    def send_inert_rst(self, ttl: int | None = None) -> None:
        """Send a RST, TTL-limited so it dies before the server when asked."""
        tcp = self._tcp()
        tcp.send_rst(ttl=ttl)
        self.sent_inert_rst = True
        self.overhead_packets += 1
        self.overhead_bytes += 40

    def send_pieces(self, pieces: list[tuple[int, bytes]], total_length: int | None = None) -> None:
        """Send payload pieces at explicit offsets (splitting / reordering).

        Each piece is (offset, data) relative to the current stream position;
        emission order is the list order, so out-of-order lists reorder the
        wire transmission.  The stream position advances past the furthest
        byte (or *total_length* when given).
        """
        tcp = self._tcp()
        base = tcp.next_seq
        span = total_length if total_length is not None else max(
            (offset + len(data) for offset, data in pieces), default=0
        )
        for offset, data in pieces:
            plan = SegmentPlan(payload=data, seq=(base + offset) & 0xFFFFFFFF)
            tcp.send_plan(plan)
        tcp.next_seq = (base + span) & 0xFFFFFFFF
        # Splitting overhead: extra headers beyond the single-segment baseline.
        self.overhead_bytes += max(len(pieces) - 1, 0) * 40
        self.overhead_packets += max(len(pieces) - 1, 0)

    def send_fragmented(
        self, payload: bytes, fragment_size: int, order: list[int] | None = None
    ) -> None:
        """Send one message as IP fragments, optionally out of order."""
        tcp = self._tcp()
        segment = TCPSegment(
            sport=tcp.sport,
            dport=tcp.dport,
            seq=tcp.next_seq,
            ack=tcp.server_ack,
            flags=TCPFlags.ACK | TCPFlags.PSH,
            payload=payload,
        )
        packet = IPPacket(src=tcp.src, dst=tcp.dst, transport=segment, ttl=tcp.ttl)
        # Fragments cannot be repaired by TCP ARQ (a lost fragment is a
        # permanent reassembly hole), so on a lossy path each one is sent
        # twice; reassemblers and receivers deduplicate by offset.  The
        # duplicates are a fault-tolerance artifact, not technique overhead.
        # Straggler duplicates (copies arriving after their set completed)
        # stay buffered in in-network reassemblers, so each datagram needs a
        # flow-unique IP identification lest a later replay's fragments merge
        # with the leftovers (IP reassembly is keyed ignoring ports).
        copies = 2 if getattr(tcp, "reliable", False) else 1
        ident = None
        if copies > 1:
            self._fragmented_datagrams += 1
            ident = (tcp.sport ^ (self._fragmented_datagrams * 257)) & 0xFFFF
        fragments = fragment_packet(packet, fragment_size, identification=ident)
        sequence = order if order is not None else list(range(len(fragments)))
        for index in sequence:
            for _ in range(copies):
                tcp.send_raw(fragments[index])
        tcp.next_seq = (tcp.next_seq + len(payload)) & 0xFFFFFFFF
        self.inert_markers.append(payload)  # found iff the datagram was reassembled
        self.overhead_packets += max(len(fragments) - 1, 0)
        self.overhead_bytes += max(len(fragments) - 1, 0) * 20

    # ------------------------------------------------------------------
    # UDP emission
    # ------------------------------------------------------------------
    def send_datagram(self, payload: bytes) -> None:
        """Send one plain datagram."""
        self._udp().send_datagram(payload)

    def send_inert_datagram(
        self,
        payload: bytes,
        ttl: int | None = None,
        checksum: int | None = None,
        length_delta: int | None = None,
    ) -> None:
        """Send one inert (malformed or TTL-limited) datagram."""
        self.inert_markers.append(payload)
        self.overhead_packets += 1
        self.overhead_bytes += len(payload) + 28
        self._udp().send_datagram(
            payload, ttl=ttl, checksum=checksum, length_delta=length_delta
        )

    # ------------------------------------------------------------------
    # misc
    # ------------------------------------------------------------------
    def pause(self, seconds: float) -> None:
        """Advance virtual time (the classification-flushing primitive)."""
        self.clock.advance(seconds)
        self.overhead_seconds += seconds

    def _tcp(self) -> RawTCPClient:
        if not isinstance(self.client, RawTCPClient):
            raise TypeError("trace is not TCP")
        return self.client

    def _udp(self) -> RawUDPClient:
        if not isinstance(self.client, RawUDPClient):
            raise TypeError("trace is not UDP")
        return self.client
