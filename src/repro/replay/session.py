"""One replay of a trace through an environment, with full observation."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.endpoint.apps import ReliableUDPReplayApp, ReplayServerApp, UDPReplayApp
from repro.endpoint.osmodel import OSProfile
from repro.endpoint.rawclient import RawTCPClient, RawUDPClient
from repro.endpoint.tcpstack import TCPServerStack
from repro.endpoint.udpstack import UDPServerStack
from repro.envs.base import Environment, SignalType
from repro.middlebox.engine import DPIMiddlebox
from repro.obs import live as obs_live
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.packets.batch import concat_wire_bytes
from repro.packets.tcp import TCPFlags
from repro.replay.runner import ReplayRunner
from repro.traffic.trace import Trace

#: Server payload (bytes) below which a throughput reading is too noisy to
#: call "throttled" — mirrors the paper's ≥2 MB AT&T test flows.
MIN_THROUGHPUT_SAMPLE_BYTES = 50_000


@dataclass
class ReplayOutcome:
    """Everything observable from one replay."""

    env_name: str
    trace_name: str
    technique: str | None
    delivered_ok: bool
    server_response_ok: bool
    content_modified: bool
    differentiated: bool
    blocked: bool
    rst_count: int
    block_page_received: bool
    zero_rated: bool | None
    classification: str | None
    throughput_bps: float | None
    peak_throughput_bps: float | None
    bytes_used: int
    elapsed: float
    inert_reached_server: bool | None
    payload_reached_server: bool = False
    overhead_packets: int = 0
    overhead_bytes: int = 0
    overhead_seconds: float = 0.0
    notes: list[str] = field(default_factory=list)

    @property
    def evaded(self) -> bool:
        """True when the technique both dodged the signal and kept integrity."""
        return not self.differentiated and self.delivered_ok and self.server_response_ok


class ReplaySession:
    """Set up and run a single replay of *trace* over *env*.

    Args:
        env: the environment to replay through.
        trace: the recorded dialogue.
        server_port: override the trace's server port (port-change evasion,
            GFC port rotation).
        tolerate_prefix: the replay server ignores unexpected leading bytes
            (models bilateral deployments with server-side support).
        server_os: override the environment's server OS profile.
    """

    def __init__(
        self,
        env: Environment,
        trace: Trace,
        server_port: int | None = None,
        tolerate_prefix: bool = False,
        server_os: OSProfile | None = None,
    ) -> None:
        self.env = env
        self.trace = trace
        self.server_port = server_port if server_port is not None else trace.server_port
        self.tolerate_prefix = tolerate_prefix
        self.server_os = server_os if server_os is not None else env.server_os
        # On a fault-injected path the endpoints run lightweight ARQ; on a
        # reliable path (the default) the packet sequence is unchanged.
        self.reliable = env.reliable_mode
        self.tcp_stack: TCPServerStack | None = None
        self.udp_stack: UDPServerStack | None = None
        self.client: RawTCPClient | RawUDPClient | None = None
        self.sport = 0

    # ------------------------------------------------------------------
    # main entry point
    # ------------------------------------------------------------------
    def run(self, technique: Any = None, context: Any = None) -> ReplayOutcome:
        """Replay the trace, optionally transformed by *technique*.

        *technique* must expose ``apply(runner)``; *context* is the
        :class:`~repro.core.evasion.base.EvasionContext` the technique needs
        (matching fields, middlebox distance, ...).
        """
        self.sport = self.env.next_sport()
        self._install_server()
        usage_before = (
            self.env.usage_counter.read() if self.env.usage_counter is not None else None
        )
        t0 = self.env.clock.now
        runner = self._make_runner(context)
        runner.technique_name = getattr(technique, "name", None)
        if obs_trace.TRACER is not None:
            obs_trace.TRACER.emit(
                "replay.start",
                t0,
                env=self.env.name,
                trace_name=self.trace.name,
                technique=runner.technique_name,
                proto_name=self.trace.protocol,
                sport=self.sport,
                dport=self.server_port,
            )
        if obs_metrics.METRICS is not None:
            obs_metrics.METRICS.inc("replay.runs")

        connect_refused = False
        if self.trace.protocol == "tcp":
            assert isinstance(self.client, RawTCPClient)
            if not self.client.connect():
                connect_refused = True
        if not connect_refused:
            if technique is not None:
                technique.apply(runner)
            else:
                runner.send_default()
            if self.trace.protocol == "tcp":
                assert isinstance(self.client, RawTCPClient)
                if self.reliable:
                    self._traced_arq("flush-unacked", self.client.flush_unacked)
                    self._traced_arq(
                        "repair-server-stream",
                        lambda: self.client.repair_server_stream(
                            len(self.trace.server_bytes())
                        ),
                    )
                self.client.close()
            elif self.reliable:
                # Techniques only add inert datagrams around the plain data
                # datagrams, so replaying the recorded dialogue is a faithful
                # repair for technique replays too (classification windows
                # are long exhausted by this point).
                self._repair_udp()

        return self._observe(runner, t0, usage_before, connect_refused)

    def _traced_arq(self, stage: str, repair: Any) -> None:
        """Run one ARQ/repair step, bracketing it with trace events.

        The retransmit machinery lives in the raw client; what the trace
        needs is *when* repair ran and how much traffic it cost, so we
        bracket the call and report the packet delta.
        """
        tracer = obs_trace.TRACER
        if tracer is None:
            repair()
            return
        assert isinstance(self.client, (RawTCPClient, RawUDPClient))
        sent_before = len(self.client.collector.packets)
        tracer.emit(
            "replay.arq.start",
            self.env.clock.now,
            env=self.env.name,
            stage=stage,
            sport=self.sport,
        )
        repair()
        tracer.emit(
            "replay.arq.done",
            self.env.clock.now,
            env=self.env.name,
            stage=stage,
            sport=self.sport,
            packets_seen=len(self.client.collector.packets) - sent_before,
        )
        if obs_metrics.METRICS is not None:
            obs_metrics.METRICS.inc(f"replay.arq.{stage}")

    # ------------------------------------------------------------------
    # setup
    # ------------------------------------------------------------------
    def _install_server(self) -> None:
        if self.trace.protocol == "tcp":
            app = ReplayServerApp(self.trace.replay_steps(), ignore_unmatched=True)
            if self.tolerate_prefix:
                app = _PrefixTolerantReplayApp(self.trace)
            self.tcp_stack = TCPServerStack(
                self.env.server_addr,
                os_profile=self.server_os,
                app=app,
                retransmit_enabled=self.reliable,
            )
            self.env.path.server_endpoint = self.tcp_stack
            self.client = RawTCPClient(
                self.env.path,
                self.env.client_addr,
                self.env.server_addr,
                sport=self.sport,
                dport=self.server_port,
                reliable=self.reliable,
            )
        else:
            if self.reliable:
                app = ReliableUDPReplayApp(
                    self.trace.client_payloads(), self.trace.udp_response_script()
                )
            else:
                app = UDPReplayApp(self.trace.udp_response_script())
            self.udp_stack = UDPServerStack(
                self.env.server_addr, os_profile=self.server_os, app=app
            )
            self.env.path.server_endpoint = self.udp_stack
            self.client = RawUDPClient(
                self.env.path,
                self.env.client_addr,
                self.env.server_addr,
                sport=self.sport,
                dport=self.server_port,
                reliable=self.reliable,
            )

    def _repair_udp(self) -> None:
        """Re-send the whole UDP dialogue until every payload and response got through.

        UDP has no ACKs, so the only repair is replaying the dialogue; the
        reliable replay app is payload-keyed and idempotent, so repeats
        re-trigger lost responses without perturbing the script.
        """
        assert isinstance(self.client, RawUDPClient) and self.udp_stack is not None
        expected_delivered = set(self.trace.client_payloads())
        expected_responses = set(self.trace.server_payloads())
        for attempt in range(3):
            delivered = set(self.udp_stack.delivered_stream(self.sport, self.server_port))
            responses = set(self.client.responses())
            if expected_delivered <= delivered and expected_responses <= responses:
                break
            if obs_trace.TRACER is not None:
                obs_trace.TRACER.emit(
                    "replay.arq.udp_round",
                    self.env.clock.now,
                    env=self.env.name,
                    attempt=attempt,
                    missing_payloads=len(expected_delivered - delivered),
                    missing_responses=len(expected_responses - responses),
                )
            if obs_metrics.METRICS is not None:
                obs_metrics.METRICS.inc("replay.arq.udp_rounds")
            for payload in self.trace.client_payloads():
                self.client.send_datagram(payload)

    def _make_runner(self, context: Any) -> ReplayRunner:
        assert self.client is not None
        return ReplayRunner(
            trace=self.trace,
            client=self.client,
            clock=self.env.clock,
            context=context,
        )

    # ------------------------------------------------------------------
    # observation
    # ------------------------------------------------------------------
    def _observe(
        self,
        runner: ReplayRunner,
        t0: float,
        usage_before: int | None,
        connect_refused: bool,
    ) -> ReplayOutcome:
        elapsed = self.env.clock.now - t0
        expected_client = self.trace.client_bytes()
        expected_server = self.trace.server_bytes()

        delivered_ok, server_response_ok = False, False
        content_modified = False
        rst_count, block_page = 0, False
        if connect_refused:
            assert isinstance(self.client, RawTCPClient)
            rst_count = len(self.client.collector.rst_packets())
        elif self.trace.protocol == "tcp":
            assert isinstance(self.client, RawTCPClient) and self.tcp_stack is not None
            delivered = self.tcp_stack.stream_for(
                self.env.client_addr, self.sport, self.server_port
            )
            if self.tolerate_prefix:
                delivered_ok = delivered.endswith(expected_client)
            else:
                delivered_ok = delivered == expected_client
            received_server = self.client.server_stream()
            server_response_ok = received_server == expected_server
            # In-flight rewriting (one of [32]'s differentiation types): the
            # full response arrived, but the bytes differ from the recording.
            content_modified = (
                bool(expected_server)
                and len(received_server) == len(expected_server)
                and received_server != expected_server
            )
            rst_count = sum(
                1
                for p in self.client.collector.rst_packets()
                if p.tcp is not None and p.tcp.dport == self.sport
            )
            block_page = self.client.collector.block_page_seen()
        else:
            assert isinstance(self.client, RawUDPClient) and self.udp_stack is not None
            delivered_list = self.udp_stack.delivered_stream(self.sport, self.server_port)
            expected_list = self.trace.client_payloads()
            # Datagram applications tolerate reordering by design, so delivery
            # integrity for UDP is multiset equality, not sequence equality.
            # On a lossy path with deliberate duplication it weakens further
            # to set equality (every recorded payload arrived at least once).
            if self.reliable:
                delivered_ok = set(delivered_list) == set(expected_list)
                server_response_ok = set(self.client.responses()) == set(
                    self.trace.server_payloads()
                )
            else:
                delivered_ok = sorted(delivered_list) == sorted(expected_list)
                server_response_ok = sorted(self.client.responses()) == sorted(
                    self.trace.server_payloads()
                )

        throughput, peak = self._throughput(expected_server)
        zero_rated = self._zero_rated(usage_before)
        classification = self._classification()
        differentiated = self._differentiated(
            connect_refused, rst_count, block_page, throughput, zero_rated, classification
        )

        inert_reached = None
        if runner.inert_markers:
            inert_reached = self._markers_reached(runner.inert_markers)
        elif runner.sent_inert_rst:
            inert_reached = self._client_rst_reached()
        payload_reached = self._client_payload_reached()

        if obs_trace.TRACER is not None:
            obs_trace.TRACER.emit(
                "replay.verdict",
                self.env.clock.now,
                env=self.env.name,
                trace_name=self.trace.name,
                technique=runner.technique_name,
                verdict=classification,
                differentiated=differentiated,
                delivered_ok=delivered_ok,
                server_response_ok=server_response_ok,
                blocked=connect_refused or rst_count > 0 or block_page,
                rst_count=rst_count,
            )
        if obs_metrics.METRICS is not None:
            obs_metrics.METRICS.inc(
                "replay.differentiated" if differentiated else "replay.undifferentiated"
            )
        if obs_live.BUS is not None:
            obs_live.BUS.emit(
                "replay.verdict",
                env=self.env.name,
                technique=runner.technique_name,
                verdict=classification,
                differentiated=differentiated,
            )
        return ReplayOutcome(
            env_name=self.env.name,
            trace_name=self.trace.name,
            technique=runner.technique_name,
            delivered_ok=delivered_ok,
            server_response_ok=server_response_ok,
            content_modified=content_modified,
            differentiated=differentiated,
            blocked=connect_refused or rst_count > 0 or block_page,
            rst_count=rst_count,
            block_page_received=block_page,
            zero_rated=zero_rated,
            classification=classification,
            throughput_bps=throughput,
            peak_throughput_bps=peak,
            bytes_used=self.trace.total_bytes(),
            elapsed=elapsed,
            inert_reached_server=inert_reached,
            payload_reached_server=payload_reached,
            overhead_packets=runner.overhead_packets,
            overhead_bytes=runner.overhead_bytes,
            overhead_seconds=runner.overhead_seconds,
        )

    def _throughput(self, expected_server: bytes) -> tuple[float | None, float | None]:
        if self.trace.protocol != "tcp" or len(expected_server) < MIN_THROUGHPUT_SAMPLE_BYTES:
            return None, None
        assert isinstance(self.client, RawTCPClient)
        samples = self.client.collector.tcp_data_samples(self.env.server_addr)
        if len(samples) < 2:
            return None, None
        start, end = samples[0][0], samples[-1][0]
        total = sum(size for _t, size in samples)
        if end <= start:
            return None, None
        average = total * 8 / (end - start)
        bins: dict[int, int] = {}
        for t, size in samples:
            bins[int((t - start) / 0.1)] = bins.get(int((t - start) / 0.1), 0) + size
        peak = max(bins.values()) * 8 / 0.1
        return average, peak

    def _zero_rated(self, usage_before: int | None) -> bool | None:
        if usage_before is None or self.env.usage_counter is None:
            return None
        delta = self.env.usage_counter.read() - usage_before
        return delta < self.trace.total_bytes() * 0.5

    def _classification(self) -> str | None:
        dpi = self.env.dpi()
        if dpi is None:
            return None
        return dpi.classification_of(
            self.env.client_addr, self.sport, self.env.server_addr, self.server_port
        )

    def _differentiated(
        self,
        connect_refused: bool,
        rst_count: int,
        block_page: bool,
        throughput: float | None,
        zero_rated: bool | None,
        classification: str | None,
    ) -> bool:
        signal = self.env.signal
        if signal is SignalType.CLASSIFICATION:
            return classification is not None and classification != "unclassified-final"
        if signal is SignalType.ZERO_RATING:
            return bool(zero_rated)
        if signal is SignalType.THROUGHPUT:
            return throughput is not None and throughput < self.env.throttle_threshold_bps
        if signal is SignalType.RST_INJECTION:
            return connect_refused or rst_count > 0
        if signal is SignalType.BLOCK_PAGE:
            return connect_refused or block_page or rst_count > 0
        return False

    def _client_payload_reached(self) -> bool:
        """True when any client payload packet physically arrived at the server.

        Fragments count: their payload bytes are raw (unparsed transport),
        but they carry application data all the same.
        """
        stacks = [s for s in (self.tcp_stack, self.udp_stack) if s is not None]
        for stack in stacks:
            for packet in stack.raw_arrivals:
                if packet.src != self.env.client_addr:
                    continue
                if packet.app_payload:
                    return True
                if packet.is_fragment and isinstance(packet.transport, bytes) and packet.transport:
                    return True
        return False

    def _client_rst_reached(self) -> bool:
        """True when *our* TTL-limited RST physically arrived at the server.

        Censors inject RSTs spoofed with the client's address; those arrive
        with a near-full TTL (they originate mid-path), while lib·erate's
        TTL-limited RST would arrive nearly expired.  The TTL distinguishes
        them, just as Weaver et al.'s forged-RST detection does.
        """
        if self.tcp_stack is None:
            return False
        return any(
            p.src == self.env.client_addr
            and p.tcp is not None
            and int(p.tcp.flags) & 0x04  # RST
            and p.ttl < 32
            for p in self.tcp_stack.raw_arrivals
        )

    def _markers_reached(self, markers: list[bytes]) -> bool:
        stacks = [s for s in (self.tcp_stack, self.udp_stack) if s is not None]
        arrival_bytes = b"".join(
            concat_wire_bytes(stack.raw_arrivals) for stack in stacks
        )
        return any(marker in arrival_bytes for marker in markers)


class _PrefixTolerantReplayApp(ReplayServerApp):
    """A replay app whose thresholds shift past any unexpected prefix bytes.

    Models server-side support: the server ignores leading dummy data and
    then follows the recorded script.  Triggering stays count-based, but the
    count starts at the first byte that matches the recorded request.
    """

    def __init__(self, trace: Trace) -> None:
        super().__init__(trace.replay_steps(), ignore_unmatched=True)
        self._expected_first = trace.client_bytes()[:1]

    def on_data(self, conn_id, data: bytes) -> bytes:  # noqa: D102 - see class doc
        buffer = self.received.setdefault(conn_id, bytearray())
        if not buffer and self._expected_first:
            # Drop the dummy prefix: skip until the first expected byte.
            index = data.find(self._expected_first)
            if index > 0:
                data = data[index:]
        return super().on_data(conn_id, data)
