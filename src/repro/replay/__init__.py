"""Replay machinery: run a recorded trace through an environment and observe.

:class:`~repro.replay.session.ReplaySession` sets up the replay server, a
raw client, drives the dialogue (optionally transformed by an evasion
technique via :class:`~repro.replay.runner.ReplayRunner`), and produces a
:class:`~repro.replay.session.ReplayOutcome` containing every observable the
paper's measurements rely on: delivery integrity, RSTs/block pages,
throughput, zero-rating, and — in the testbed — the classifier verdict.
"""

from repro.replay.runner import ReplayRunner
from repro.replay.session import ReplayOutcome, ReplaySession

__all__ = ["ReplayRunner", "ReplayOutcome", "ReplaySession"]
