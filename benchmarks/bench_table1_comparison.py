"""Table 1 — comparison between lib·erate and other evasion methods."""

from repro.experiments.table1 import format_table1, liberate_row, run_table1

from benchmarks.conftest import save_result


def test_table1_comparison(benchmark, results_dir):
    rows = benchmark(run_table1)
    save_result(results_dir, "table1_comparison", format_table1(rows))
    # The paper's claim: only lib·erate provides rule detection plus all
    # three evasion families, client-only, at O(1) overhead.
    derived = liberate_row()
    assert derived.overhead == "O(1)"
    assert derived.rule_detection and derived.split_reorder
    assert derived.inert_injection and derived.flushing
    others = [r for r in rows if r.method != "liberate"]
    assert all(not (r.rule_detection and r.flushing) for r in others)
