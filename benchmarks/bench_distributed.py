"""§4.2 — distributing characterization across cooperating users."""

from repro.core.distributed import speedup_from_distribution
from repro.envs.testbed import make_testbed
from repro.traffic.http import http_get_trace

from benchmarks.conftest import BenchProbe, save_bench_json, save_result


def test_distributed_characterization(benchmark, results_dir):
    trace = http_get_trace("video.example.com", response_body=b"v" * 900)
    with BenchProbe() as probe:
        stats = benchmark.pedantic(
            speedup_from_distribution,
            args=(make_testbed, trace),
            kwargs={"users": 4},
            rounds=1,
            iterations=1,
        )
    content = "\n".join(f"{key}: {value:.1f}" for key, value in stats.items())
    save_result(results_dir, "distributed_characterization", content)
    save_bench_json(
        results_dir,
        "distributed_characterization",
        probe,
        rounds=int(stats["solo_rounds"] + stats["distributed_total_rounds"]),
        speedup=stats["speedup"],
    )
    # The per-user load (and wall-clock, with concurrent users) divides ~N.
    assert stats["speedup"] >= 3.0
    # Aggregated results are identical to a solo run.
    assert stats["fields_agree"] == 1.0
    assert stats["distributed_total_rounds"] >= stats["busiest_user_rounds"] * 3
