"""Scale benchmark — bounded flow-state churn throughput and peak RSS.

Churns ``REPRO_SCALE_FLOWS`` flows (default 100k) through a capacity-bounded
engine and records packets/second **and peak RSS** in ``BENCH_scale.json``.
The watchdog tracks both: a throughput drop flags a slow path in the
slab/LRU/timer-wheel machinery, and a peak-RSS jump flags a structure that
stopped being bounded.  The churn counters (evictions, sheds) are
seeded-deterministic, so they are also watchdog-checked as exact keys.
"""

import os

from repro.experiments.scale import ScaleConfig, format_scale, run_scale

from benchmarks.conftest import BenchProbe, save_bench_json, save_result

FLOWS = int(os.environ.get("REPRO_SCALE_FLOWS", "100000"))


def test_scale_churn_datapoint(results_dir):
    config = ScaleConfig(flows=FLOWS)
    with BenchProbe() as probe:
        result = run_scale(config)
    # The churn drives the engine directly (no netsim path), so the global
    # propagation counter never moves; the engine's packet count is the
    # honest throughput denominator.
    probe.packets = result.packets
    save_result(results_dir, "scale_churn", format_scale(result))
    save_bench_json(
        results_dir,
        "scale",
        probe,
        flows=result.flows_offered,
        evictions=result.evictions,
        sheds=result.sheds,
        expired=result.expired,
        matches=result.matches,
        peak_tracked_flows=result.peak_tracked_flows,
    )
    assert result.peak_tracked_flows <= config.max_flows
    assert result.evictions > 0, "churn must exceed capacity to exercise eviction"
    assert result.tracked_flows_end <= config.max_flows
