"""Benchmark-suite helpers: every bench saves its paper-style table to disk."""

from __future__ import annotations

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def save_result(results_dir: Path, name: str, content: str) -> None:
    """Persist a rendered experiment table next to the benchmark data."""
    (results_dir / f"{name}.txt").write_text(content + "\n")
    print(f"\n=== {name} ===\n{content}\n")
