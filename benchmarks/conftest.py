"""Benchmark-suite helpers: every bench saves its paper-style table to disk.

Benchmarks additionally emit machine-readable ``BENCH_<name>.json`` files
(wall-clock seconds, simulated packets/second, replay rounds) so CI and the
regression tracker in ``benchmarks/results/BENCH_baseline.json`` can compare
runs without scraping text tables.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import pytest

from repro.netsim.path import packets_propagated
from repro.obs import history as obs_history
from repro.obs import profiling as obs_profiling

RESULTS_DIR = Path(__file__).parent / "results"
HISTORY_FILE = RESULTS_DIR / "BENCH_history.jsonl"

try:
    import pytest_timeout  # noqa: F401
except ImportError:
    # Same shim as tests/conftest.py: keep the ``timeout`` ini key valid for
    # benchmark runs when pytest-timeout is not installed locally.
    def pytest_addoption(parser):
        parser.addini(
            "timeout",
            "per-test timeout in seconds (enforced only with pytest-timeout)",
            default=None,
        )


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def save_result(results_dir: Path, name: str, content: str) -> None:
    """Persist a rendered experiment table next to the benchmark data."""
    (results_dir / f"{name}.txt").write_text(content + "\n")
    print(f"\n=== {name} ===\n{content}\n")


class BenchProbe:
    """Measure wall-clock time and simulated-packet throughput of a block.

    The packet count is the delta of the process-wide propagation counter,
    so it covers exactly the packets the measured section pushed through
    the simulator.
    """

    def __enter__(self) -> "BenchProbe":
        self._packets0 = packets_propagated()
        self._time0 = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.seconds = time.perf_counter() - self._time0
        self.packets = packets_propagated() - self._packets0

    @property
    def packets_per_second(self) -> float:
        return self.packets / self.seconds if self.seconds > 0 else 0.0


def save_bench_json(
    results_dir: Path, name: str, probe: BenchProbe, **metrics: object
) -> None:
    """Write ``BENCH_<name>.json`` with the probe's numbers plus *metrics*."""
    payload: dict[str, object] = {
        "name": name,
        "seconds": round(probe.seconds, 4),
        "packets": probe.packets,
        "packets_per_second": round(probe.packets_per_second, 1),
    }
    peak_rss = obs_profiling.peak_rss_kb()
    if peak_rss is not None:
        payload["peak_rss_kb"] = peak_rss
    payload.update(metrics)
    if obs_profiling.PROFILER is not None and obs_profiling.PROFILER.stages:
        payload["profile"] = obs_profiling.PROFILER.snapshot()
    path = results_dir / f"BENCH_{name}.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"\n=== BENCH_{name}.json ===\n{path.read_text()}")
    if os.environ.get("REPRO_BENCH_HISTORY") == "1":
        # Opt-in so local experiments don't churn the committed rolling
        # history; CI appends explicitly via ``watchdog.py --append``.
        obs_history.append_entries(
            HISTORY_FILE, [obs_history.entry_from_bench(payload, timestamp=time.time())]
        )
