"""§6.2 — Amazon Prime Video replay over T-Mobile with/without lib·erate."""

from repro.experiments.paper_expectations import TMOBILE_THROUGHPUT
from repro.experiments.throughput import format_throughput, run_tmus_throughput

from benchmarks.conftest import save_result


def test_tmus_video_throughput(benchmark, results_dir):
    without, with_lib = benchmark.pedantic(
        run_tmus_throughput, kwargs={"video_bytes": 10_000_000}, rounds=1, iterations=1
    )
    save_result(results_dir, "throughput_tmus", format_throughput((without, with_lib)))
    # Shape: Binge On pins classified video near the "optimized" rate...
    assert without.zero_rated
    assert without.average_mbps == __import__("pytest").approx(
        TMOBILE_THROUGHPUT["without_liberate_avg"], rel=0.25
    )
    # ...and lib·erate's evasion restores multiples of that (paper: 2.8x;
    # our simulated link is cleaner than a cellular one, so the factor is
    # larger — direction and winner are what must hold).
    assert not with_lib.zero_rated
    assert with_lib.average_mbps > 2.5 * without.average_mbps
    assert with_lib.peak_mbps > without.peak_mbps
