"""Bilateral evasion — the §6.5 dummy-prefix finding and the §7 outlook."""

from repro.experiments.bilateral import format_bilateral, run_bilateral_matrix

from benchmarks.conftest import save_result


def test_bilateral_matrix(benchmark, results_dir):
    results = benchmark.pedantic(run_bilateral_matrix, rounds=1, iterations=1)
    save_result(results_dir, "bilateral", format_bilateral(results))
    by_env = {r.env: r for r in results}
    # Everything is differentiated at baseline.
    assert all(r.baseline_differentiated for r in results)
    # Paper: the dummy prefix evades testbed, T-Mobile, AT&T and the GFC...
    for env in ("testbed", "tmobile", "att", "gfc"):
        assert by_env[env].dummy_prefix_evades, env
    # ...but not Iran, whose per-packet classifier keeps matching.
    assert not by_env["iran"].dummy_prefix_evades
    # §7: bilateral payload modification beats every classifier studied.
    assert all(r.rotation_evades for r in results)
