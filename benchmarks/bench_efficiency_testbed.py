"""§6.1 — characterization efficiency in the testbed (HTTP and Skype/UDP)."""

from repro.experiments.efficiency import run_testbed_http, run_testbed_skype
from repro.experiments.paper_expectations import EFFICIENCY

from benchmarks.conftest import BenchProbe, save_bench_json, save_result


def test_testbed_http_characterization(benchmark, results_dir):
    with BenchProbe() as probe:
        result = benchmark.pedantic(run_testbed_http, rounds=1, iterations=1)
    content = (
        f"rounds: {result.rounds} (paper: <= {EFFICIENCY['testbed-http']['rounds_max']})\n"
        f"bytes/round: {result.bytes_used / max(result.rounds, 1):.0f} "
        f"(paper: < {EFFICIENCY['testbed-http']['bytes_per_round_max']})\n"
        f"fields: {', '.join(result.matching_fields)}"
    )
    save_result(results_dir, "efficiency_testbed_http", content)
    save_bench_json(results_dir, "efficiency_testbed_http", probe, rounds=result.rounds)
    # Same order of magnitude as the paper's <=70 rounds.
    assert result.rounds <= 90
    # The classifier's keyword (hostname) was recovered byte-exactly.
    assert any("video.example.com" in field for field in result.matching_fields)
    assert result.bytes_used / result.rounds < 5_000  # ~KB per round, like the paper


def test_testbed_skype_characterization(benchmark, results_dir):
    with BenchProbe() as probe:
        result = benchmark.pedantic(run_testbed_skype, rounds=1, iterations=1)
    content = (
        f"rounds: {result.rounds} (paper: {EFFICIENCY['testbed-skype']['rounds']})\n"
        f"fields (binary STUN structure): {', '.join(result.matching_fields)}"
    )
    save_result(results_dir, "efficiency_testbed_skype", content)
    save_bench_json(results_dir, "efficiency_testbed_skype", probe, rounds=result.rounds)
    assert result.rounds <= 150  # paper: 115 replays
    # Matching fields are in the first packets and not human-readable —
    # the MS-SERVICE-QUALITY attribute type 0x8055 appears among them (§6.1).
    assert any("\\x80U" in field or "0x8055" in field for field in result.matching_fields)
