"""Observability overhead — the same Table 3 slice traced and untraced.

Runs a single-environment Table 3 column three times: once with every
observability facility disabled (the shipping default), once with the
flow tracer, metrics registry and profiler all enabled, and once with the
rule/automaton coverage profiler on its own.  ``BENCH_obs.json`` records
the wall-clock timings, the traced event volume, the per-stage profile and
the coverage-overhead ratio so the cost of instrumentation is a tracked
number instead of folklore.
"""

from repro.experiments.table3 import run_table3
from repro.obs import (
    covering,
    disable_metrics,
    disable_tracing,
    enable_metrics,
    enable_tracing,
    observability_off,
    profiled,
)

from benchmarks.conftest import BenchProbe, save_bench_json

_KWARGS = {
    "env_names": ("testbed",),
    "characterize": False,
    "include_os_matrix": False,
}


def test_obs_overhead_datapoint(benchmark, results_dir):
    """One tracing-enabled Table 3 datapoint next to its untraced twin."""
    observability_off()
    with BenchProbe() as probe_off:
        benchmark.pedantic(run_table3, kwargs=_KWARGS, rounds=1, iterations=1)

    with covering() as recorder:
        with BenchProbe() as probe_cov:
            run_table3(**_KWARGS)
        coverage_hits = recorder.snapshot()["total_rule_hits"]

    tracer = enable_tracing()
    metrics = enable_metrics()
    try:
        with profiled() as profiler:
            with BenchProbe() as probe_on:
                run_table3(**_KWARGS)
            events = len(tracer)
            rule_matches = metrics.counter("mbx.rule_matches")
            save_bench_json(
                results_dir,
                "obs",
                probe_on,
                traced_events=events,
                dropped_events=tracer.dropped_events,
                rule_matches=rule_matches,
                untraced_seconds=round(probe_off.seconds, 4),
                overhead_ratio=round(probe_on.seconds / probe_off.seconds, 3)
                if probe_off.seconds > 0
                else None,
                coverage_seconds=round(probe_cov.seconds, 4),
                coverage_overhead_ratio=round(
                    probe_cov.seconds / probe_off.seconds, 3
                )
                if probe_off.seconds > 0
                else None,
                coverage_rule_hits=coverage_hits,
            )
            assert profiler.stages, "profiling stages should have fired"
    finally:
        disable_tracing()
        disable_metrics()

    assert events > 0, "a traced table3 run must emit events"
    assert tracer.dropped_events == 0
    assert rule_matches > 0
    assert coverage_hits > 0, "a covered table3 run must record rule hits"
