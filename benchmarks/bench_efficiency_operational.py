"""§6.2/§6.3/§6.5/§6.6 — characterization efficiency in operational networks."""

from repro.experiments.efficiency import run_att, run_gfc, run_iran, run_tmobile
from repro.experiments.paper_expectations import EFFICIENCY

from benchmarks.conftest import save_result


def test_tmobile_characterization(benchmark, results_dir):
    result = benchmark.pedantic(run_tmobile, rounds=1, iterations=1)
    low, high = EFFICIENCY["tmobile"]["rounds_range"]
    content = (
        f"rounds: {result.rounds} (paper: {low}-{high})\n"
        f"data: {result.bytes_used / 1e6:.1f} MB (paper: {EFFICIENCY['tmobile']['megabytes']} MB)\n"
        f"~minutes: {result.estimated_minutes:.0f} (paper: {EFFICIENCY['tmobile']['minutes']})\n"
        f"fields: {', '.join(result.matching_fields)}"
    )
    save_result(results_dir, "efficiency_tmobile", content)
    assert 30 <= result.rounds <= 120  # paper: 80-95; same order
    assert result.bytes_used > 5e6  # megabytes of replays (paper: 18 MB)
    assert any("cloudfront.net" in field for field in result.matching_fields)


def test_att_characterization(benchmark, results_dir):
    result = benchmark.pedantic(run_att, rounds=1, iterations=1)
    content = (
        f"rounds: {result.rounds} (paper: {EFFICIENCY['att']['rounds']})\n"
        f"client fields: {', '.join(result.matching_fields)}\n"
        f"server fields: {', '.join(result.server_side_fields)}"
    )
    save_result(results_dir, "efficiency_att", content)
    assert result.rounds <= 130  # paper: 71 replays
    # §6.3: standard HTTP tokens client-side plus Content-Type: video
    # in the server-to-client direction.
    assert any("GET" in field for field in result.matching_fields)
    assert any("HTTP/1.1" in field for field in result.matching_fields)
    assert any("Content-Type: video" in field for field in result.server_side_fields)


def test_gfc_characterization(benchmark, results_dir):
    result = benchmark.pedantic(run_gfc, rounds=1, iterations=1)
    content = (
        f"rounds: {result.rounds} (paper: {EFFICIENCY['gfc']['rounds']})\n"
        f"data: {result.bytes_used / 1e3:.0f} KB (paper: < {EFFICIENCY['gfc']['kilobytes_max']} KB)\n"
        f"fields: {', '.join(result.matching_fields)}"
    )
    save_result(results_dir, "efficiency_gfc", content)
    assert result.rounds <= 120  # paper: 86 replays
    # §6.5: the keywords are GET and the censored hostname, and the run
    # must survive the GFC's residual server:port blocking (port rotation).
    assert any("GET" in field for field in result.matching_fields)
    assert any("economist.com" in field for field in result.matching_fields)


def test_iran_characterization(benchmark, results_dir):
    result = benchmark.pedantic(run_iran, rounds=1, iterations=1)
    content = (
        f"rounds: {result.rounds} (paper: {EFFICIENCY['iran']['rounds']})\n"
        f"data: {result.bytes_used / 1e3:.0f} KB (paper: ~{EFFICIENCY['iran']['kilobytes']} KB)\n"
        f"fields: {', '.join(result.matching_fields)}\n"
        f"inspects all packets: {result.inspects_all_packets}"
    )
    save_result(results_dir, "efficiency_iran", content)
    assert result.rounds <= 120  # paper: 75 replays
    assert any("facebook.com" in field for field in result.matching_fields)
    # §6.6: "the classifier checks every packet in a flow"
    assert result.inspects_all_packets
