"""Benchmark-regression watchdog: compare BENCH_*.json runs to history.

CI (and anyone locally) runs this after a benchmark session::

    PYTHONPATH=src python benchmarks/watchdog.py \
        --benches obs table3_fast --threshold 2.0

It loads ``benchmarks/results/BENCH_history.jsonl``, compares the current
``BENCH_<name>.json`` payloads against the per-benchmark history median
(wall-clock noise band) and last entry (deterministic keys), prints the
verdict, and exits non-zero when anything is flagged.  ``--append`` records
the current payloads into the rolling history after a clean check.

Also reachable as ``liberate obs watch`` — same engine, same flags.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

try:
    from repro.obs import history as obs_history
except ImportError:  # running from the repo root without PYTHONPATH
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
    from repro.obs import history as obs_history

DEFAULT_RESULTS = Path(__file__).parent / "results"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="watchdog", description="flag benchmark regressions vs. recorded history"
    )
    parser.add_argument(
        "--results-dir",
        default=str(DEFAULT_RESULTS),
        help="directory holding BENCH_*.json payloads",
    )
    parser.add_argument(
        "--history",
        default=None,
        help="history JSONL path (default: <results-dir>/BENCH_history.jsonl)",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=obs_history.DEFAULT_THRESHOLD,
        help="noise band: flag seconds beyond median*(1+threshold)",
    )
    parser.add_argument(
        "--benches",
        nargs="*",
        default=None,
        help="restrict the check to these benchmark names",
    )
    parser.add_argument(
        "--append",
        action="store_true",
        help="record current payloads into the rolling history after checking",
    )
    parser.add_argument(
        "--window",
        type=int,
        default=obs_history.DEFAULT_WINDOW,
        help="rolling-history window per benchmark name",
    )
    parser.add_argument("--json", action="store_true", help="machine-readable output")
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return obs_history.run_watch(
        args.results_dir,
        history_path=args.history,
        threshold=args.threshold,
        benches=args.benches,
        append=args.append,
        window=args.window,
        json_output=args.json,
        timestamp=time.time(),
    )


if __name__ == "__main__":
    raise SystemExit(main())
