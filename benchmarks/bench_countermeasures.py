"""§4.3 countermeasures — a norm-style normalizer vs. the taxonomy."""

from repro.experiments.countermeasures import (
    format_countermeasures,
    neutralized,
    run_countermeasure_study,
    survivors,
)

from benchmarks.conftest import save_result


def test_normalizer_countermeasure_study(benchmark, results_dir):
    results = benchmark.pedantic(run_countermeasure_study, rounds=1, iterations=1)
    save_result(results_dir, "countermeasures", format_countermeasures(results))
    by_name = {r.technique: r for r in results}

    # Filtering + TTL normalization wipe out the whole inert class (§4.3:
    # "a network could detect and filter lib·erate's inert packets ...
    # would render this class of techniques ineffective").
    for result in results:
        if result.category == "inert-insertion":
            assert not result.evades_normalized, result.technique

    # Fragment tricks and wire reordering die to reassembly/re-segmentation.
    for name in ("ip-fragmentation", "ip-fragment-reorder", "tcp-segment-reorder"):
        assert by_name[name].evades_plain and not by_name[name].evades_normalized

    # Delay-based flushing survives: no normalizer can force the classifier
    # to retain state longer ("require a middlebox to ... maintain state for
    # longer durations than is done today").
    assert by_name["flush-pause-after-match"].evades_normalized
    assert by_name["flush-pause-before-match"].evades_normalized
    # But the RST variants die: TTL normalization delivers the RST to the
    # server, killing the very connection it was meant to protect.
    assert not by_name["flush-rst-after-match"].evades_normalized

    # In-order splitting survives packet-granularity normalization — the
    # normalizer never holds data back, so a per-packet classifier behind it
    # still sees the field cut.  Defeating it requires reassembly at the
    # *classifier* (the GFC's design), exactly as §4.3 argues.
    assert by_name["tcp-segment-split"].evades_normalized

    # The countermeasure is meaningful: it neutralizes most of the arsenal.
    assert len(neutralized(results)) >= 10
    assert len(survivors(results)) <= 4
