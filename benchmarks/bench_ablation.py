"""Ablations of lib·erate's design choices (DESIGN.md §6)."""

from repro.experiments.ablation import format_ablations, run_all_ablations

from benchmarks.conftest import save_result


def test_design_ablations(benchmark, results_dir):
    results = benchmark.pedantic(run_all_ablations, rounds=1, iterations=1)
    save_result(results_dir, "ablations", format_ablations(results))
    by_name = {r.name: r for r in results}
    # Pruning never costs extra replays and usually saves them.
    pruning = by_name["evaluation-pruning"]
    assert pruning.with_choice <= pruning.without_choice
    # Byte-exact bisection costs more rounds than 4-byte regions (the price
    # of exact matching fields).
    granularity = by_name["bisection-granularity"]
    assert granularity.with_choice > granularity.without_choice
    # Port rotation is what makes GFC characterization correct at all.
    rotation = by_name["gfc-port-rotation"]
    assert rotation.with_choice == 1.0 and rotation.without_choice == 0.0
