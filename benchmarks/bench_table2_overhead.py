"""Table 2 — measured per-flow overhead of each technique category (§5.3)."""

from repro.experiments.paper_expectations import OVERHEAD
from repro.experiments.table2 import format_table2, run_table2

from benchmarks.conftest import save_result


def test_table2_overhead(benchmark, results_dir):
    rows = benchmark.pedantic(run_table2, rounds=1, iterations=1)
    save_result(results_dir, "table2_overhead", format_table2(rows))
    by_category = {r.category: r for r in rows}
    # Inert insertion: k extra packets, k < 5 (paper §5.3).
    assert by_category["inert-insertion"].max_packets <= OVERHEAD["inert_max_packets"]
    # Splitting/reordering: k * 40-byte headers, no delay.
    assert by_category["splitting"].max_seconds == 0.0
    assert by_category["reordering"].max_seconds == 0.0
    # Flushing: t seconds in the paper's 40-240 s range (or one RST packet).
    low, high = OVERHEAD["flush_delay_range_seconds"]
    assert low <= by_category["flushing"].max_seconds <= high
    assert by_category["flushing"].max_packets <= 1
