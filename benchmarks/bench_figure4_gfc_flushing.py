"""Figure 4 — GFC delay-based evasion success varies during the day (§6.5)."""

from repro.experiments.figure4 import (
    busy_and_quiet_summary,
    format_figure4,
    run_figure4,
)

from benchmarks.conftest import BenchProbe, save_bench_json, save_result


def test_figure4_time_of_day(benchmark, results_dir):
    with BenchProbe() as probe:
        samples = benchmark.pedantic(
            run_figure4, kwargs={"trials": 6}, rounds=1, iterations=1
        )
    summary = busy_and_quiet_summary(samples)
    content = format_figure4(samples) + f"\n\n{summary}"
    save_result(results_dir, "figure4_gfc_flushing", content)
    save_bench_json(
        results_dir,
        "figure4_gfc_flushing",
        probe,
        rounds=len(samples),
        busy_min_delay=summary["busy_min_delay"],
    )
    # Shape assertions matching the paper's reading of the figure:
    # busy hours permit shorter delays, quiet hours defeat even 240 s.
    assert summary["busy_success_rate"] == 1.0
    assert summary["quiet_success_rate"] == 0.0
    assert 10 <= summary["busy_min_delay"] <= 60
    assert summary["busy_max_delay"] <= 240
