"""§6.4 — Sprint: the probe battery finds no DPI-based differentiation."""

from repro.experiments.sprint import format_sprint, run_sprint_detection, run_sprint_probes

from benchmarks.conftest import save_result


def test_sprint_probe_battery(benchmark, results_dir):
    probes = benchmark.pedantic(run_sprint_probes, rounds=1, iterations=1)
    save_result(results_dir, "sprint_nodpi", format_sprint(probes))
    # No probe — different ports, content classes, inverted payloads — shows
    # differential treatment.
    assert all(not probe.differentiated for probe in probes)
    rates = [p.throughput_mbps for p in probes if p.throughput_mbps]
    assert max(rates) / min(rates) < 2.0  # no flow singled out


def test_sprint_liberate_verdict(benchmark):
    verdict = benchmark.pedantic(run_sprint_detection, rounds=1, iterations=1)
    assert verdict  # lib·erate correctly reports "no differentiation"
