"""Table 3 — effectiveness of every evasion technique across all networks.

The headline experiment: 26 techniques x {testbed, T-Mobile, GFC, Iran,
AT&T} x {CC?, RS?} plus per-OS server responses, with contexts produced by
the real characterization/localization phases.  The benchmark asserts
cell-for-cell agreement with the paper.
"""

import pytest

from repro.experiments.table3 import compare_with_paper, format_table3, run_table3

from benchmarks.conftest import BenchProbe, save_bench_json, save_result


def _rounds_measured(rows) -> int:
    return sum(1 for row in rows for cell in row.cells.values() if cell.outcome is not None)


def test_table3_full_matrix(benchmark, results_dir):
    with BenchProbe() as probe:
        rows = benchmark.pedantic(
            run_table3, kwargs={"characterize": True}, rounds=1, iterations=1
        )
    matches, total, mismatches = compare_with_paper(rows)
    content = format_table3(rows) + f"\n\npaper agreement: {matches}/{total} cells"
    if mismatches:
        content += "\n" + "\n".join(f"  mismatch: {m}" for m in mismatches)
    save_result(results_dir, "table3_effectiveness", content)
    save_bench_json(
        results_dir,
        "table3_effectiveness",
        probe,
        rounds=_rounds_measured(rows),
        paper_agreement=f"{matches}/{total}",
    )
    assert total >= 300
    assert matches == total, mismatches


def test_table3_fast_mode(benchmark, results_dir):
    """Ground-truth contexts instead of live characterization (sanity check).

    Throughput is the fastest of five rounds: scheduler noise and GC debt
    only ever slow a round down, so the minimum is the least-biased estimate
    of what the simulator sustains (early rounds also pay allocator warmup;
    later ones run settled).
    """
    probes: list[BenchProbe] = []

    def run():
        with BenchProbe() as probe:
            rows = run_table3(characterize=False)
        probes.append(probe)
        return rows

    rows = benchmark.pedantic(run, rounds=5, iterations=1)
    probe = min(probes, key=lambda p: p.seconds)
    matches, total, mismatches = compare_with_paper(rows)
    save_bench_json(
        results_dir,
        "table3_fast",
        probe,
        rounds=_rounds_measured(rows),
        paper_agreement=f"{matches}/{total}",
        timing_rounds=len(probes),
    )
    assert matches == total, mismatches
