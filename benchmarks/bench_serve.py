"""Live serving benchmark: flows/second and verdict-latency percentiles.

Drives a burst of concurrent loopback flows through the asyncio proxy with
the ops layer enabled — exactly the ``liberate serve`` configuration — and
records wall-clock throughput plus the p50/p99 end-to-end verdict latency
into ``BENCH_serve.json``.  The watchdog tracks ``verdict_p99_ms`` with a
wide band (:data:`repro.obs.history.LATENCY_THRESHOLD`): tail latency on a
shared runner is noisy, but an order-of-magnitude serving regression is
not.
"""

from __future__ import annotations

import asyncio

from conftest import BenchProbe, save_bench_json

from repro.core.pipeline import Liberate
from repro.core.proxy_server import ProxyServer, drive_clients
from repro.envs import ENVIRONMENT_FACTORIES
from repro.obs import flight as obs_flight
from repro.obs import ops as obs_ops
from repro.traffic.http import http_get_trace

FLOWS = 400
CONCURRENCY = 64


def test_bench_serve(results_dir):
    env = ENVIRONMENT_FACTORIES["testbed"]()
    base = http_get_trace("video.example.com", response_body=b"x" * 800)
    ladder = Liberate(env).deploy_ladder(base, window=5, failure_threshold=3)
    server = ProxyServer(ladder, server_port=base.server_port)
    payloads = [base.client_payloads()[0]] * FLOWS

    registry = obs_ops.enable_ops()
    obs_flight.enable_flight(out_dir=str(results_dir))  # idle: serving config
    try:

        async def drive() -> None:
            await server.start()
            try:
                await drive_clients(
                    "127.0.0.1",
                    server.bound_port,
                    payloads,
                    concurrency=CONCURRENCY,
                    on_verdict=lambda _i, _v: None,
                )
            finally:
                await server.stop()

        with BenchProbe() as probe:
            asyncio.run(drive())

        verdict = registry.recorder("proxy.verdict")
        assert verdict is not None and verdict.count == FLOWS
        assert server.stats.evaded == FLOWS
        save_bench_json(
            results_dir,
            "serve",
            probe,
            flows=FLOWS,
            flows_per_second=round(FLOWS / probe.seconds, 1),
            verdict_p50_ms=round(verdict.percentile(50) * 1000, 3),
            verdict_p99_ms=round(verdict.percentile(99) * 1000, 3),
        )
    finally:
        obs_ops.disable_ops()
        obs_flight.disable_flight()
